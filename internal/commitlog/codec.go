package commitlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Wire layout. The commit log's durable unit is the record frame; the
// consumer-offset map is persisted as commit frames appended to an
// offsets log. Both follow the platform's wire discipline (PR 6):
// length-prefixed binary with bounded prefixes, and corrupt or
// truncated input always surfaces as an error — never a panic — pinned
// by FuzzSegmentRecordRoundtrip and FuzzOffsetMapDecode.
//
// Record frame (segment files are a concatenation of these):
//
//	recMagic | uvarint offset | uvarint keyLen | key |
//	uvarint payloadLen | payload | crc32(IEEE, all prior bytes) LE
//
// The offset is explicit (not derived from position) because
// compaction rewrites sealed segments with holes where superseded
// records were dropped. The trailing CRC is what makes a torn tail
// detectable: recovery scans frames sequentially and truncates at the
// first frame whose bytes are incomplete or whose checksum fails.
//
// Offset-map commit frame (offsets log files are a concatenation):
//
//	offMagic | uvarint generation | uvarint entryCount |
//	entryCount x (uvarint nameLen | name | uvarint next) |
//	crc32(IEEE, all prior bytes) LE
//
// Commits are appended, never rewritten in place: recovery takes the
// valid frame with the highest generation and ignores a torn tail, so
// a crash mid-commit falls back to the previous durable commit instead
// of corrupting every consumer's resume point.
const (
	recMagic = 0xC1
	offMagic = 0xC2
)

// maxFrameLen bounds any single length prefix (key, payload, entry
// count) so a corrupt frame cannot demand an absurd allocation before
// the corruption is noticed.
const maxFrameLen = 1 << 26

// Codec errors. ErrTruncated specifically marks input that ends
// mid-frame — recovery treats it (and CRC mismatch) as the torn tail.
var (
	ErrTruncated = errors.New("commitlog: truncated frame")
	ErrCorrupt   = errors.New("commitlog: corrupt frame")
)

// appendRecordFrame appends the encoded frame for rec to dst.
func appendRecordFrame(dst []byte, offset uint64, key string, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, recMagic)
	dst = binary.AppendUvarint(dst, offset)
	dst = binary.AppendUvarint(dst, uint64(len(key)))
	dst = append(dst, key...)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
	return dst
}

// frameReader walks a buffer of concatenated frames.
type frameReader struct {
	buf []byte
	off int
}

func (r *frameReader) byte_() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, ErrTruncated
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *frameReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.off += n
	return v, nil
}

// bytes returns a length-prefixed field ALIASING the underlying buffer.
func (r *frameReader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxFrameLen {
		return nil, ErrCorrupt
	}
	if uint64(len(r.buf)-r.off) < n {
		return nil, ErrTruncated
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

// checkCRC verifies the trailing checksum over buf[start:r.off] and
// consumes it.
func (r *frameReader) checkCRC(start int) error {
	if len(r.buf)-r.off < 4 {
		return ErrTruncated
	}
	want := binary.LittleEndian.Uint32(r.buf[r.off:])
	if crc32.ChecksumIEEE(r.buf[start:r.off]) != want {
		return fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	r.off += 4
	return nil
}

// decodeRecordFrame decodes one record frame at the reader's position.
// Key and payload are copied (segment buffers are recycled by
// compaction; decoded records must not alias them).
func (r *frameReader) decodeRecordFrame() (Record, error) {
	start := r.off
	magic, err := r.byte_()
	if err != nil {
		return Record{}, err
	}
	if magic != recMagic {
		return Record{}, fmt.Errorf("%w: bad record magic 0x%02x", ErrCorrupt, magic)
	}
	var rec Record
	if rec.Offset, err = r.uvarint(); err != nil {
		return Record{}, err
	}
	key, err := r.bytes()
	if err != nil {
		return Record{}, err
	}
	payload, err := r.bytes()
	if err != nil {
		return Record{}, err
	}
	if err := r.checkCRC(start); err != nil {
		return Record{}, err
	}
	rec.Key = string(key)
	if len(payload) > 0 {
		rec.Payload = append([]byte(nil), payload...)
	}
	return rec, nil
}

// appendOffsetsFrame appends one encoded offset-map commit frame. The
// entries slice must be pre-sorted by name for deterministic bytes.
func appendOffsetsFrame(dst []byte, generation uint64, entries []offsetEntry) []byte {
	start := len(dst)
	dst = append(dst, offMagic)
	dst = binary.AppendUvarint(dst, generation)
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = binary.AppendUvarint(dst, uint64(len(e.name)))
		dst = append(dst, e.name...)
		dst = binary.AppendUvarint(dst, e.next)
	}
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
	return dst
}

// offsetEntry is one consumer's persisted cursor: next is the offset of
// the first record the consumer has NOT processed.
type offsetEntry struct {
	name string
	next uint64
}

// decodeOffsetsFrame decodes one offset-map commit frame at the
// reader's position.
func (r *frameReader) decodeOffsetsFrame() (gen uint64, entries []offsetEntry, err error) {
	start := r.off
	magic, err := r.byte_()
	if err != nil {
		return 0, nil, err
	}
	if magic != offMagic {
		return 0, nil, fmt.Errorf("%w: bad offsets magic 0x%02x", ErrCorrupt, magic)
	}
	if gen, err = r.uvarint(); err != nil {
		return 0, nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return 0, nil, err
	}
	if n > maxFrameLen {
		return 0, nil, ErrCorrupt
	}
	// Each entry is at least 2 bytes; cheap sanity bound before
	// allocating for a corrupt count.
	if n > uint64(len(r.buf)) {
		return 0, nil, ErrTruncated
	}
	entries = make([]offsetEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		name, err := r.bytes()
		if err != nil {
			return 0, nil, err
		}
		next, err := r.uvarint()
		if err != nil {
			return 0, nil, err
		}
		entries = append(entries, offsetEntry{name: string(name), next: next})
	}
	if err := r.checkCRC(start); err != nil {
		return 0, nil, err
	}
	return gen, entries, nil
}

// decodeSegment decodes every intact record frame in data, returning
// the records plus the byte length of the valid prefix. A torn or
// corrupt tail is reported through tornErr (nil when the whole buffer
// parsed) — callers recovering from a crash truncate to validLen;
// callers reading a buffer that must be whole treat tornErr as fatal.
func decodeSegment(data []byte) (recs []Record, validLen int, tornErr error) {
	r := frameReader{buf: data}
	for r.off < len(data) {
		rec, err := r.decodeRecordFrame()
		if err != nil {
			return recs, validLen, err
		}
		recs = append(recs, rec)
		validLen = r.off
	}
	return recs, validLen, nil
}

// decodeOffsetsLog scans a buffer of concatenated commit frames and
// returns the entries of the valid frame with the highest generation
// (nil if none), ignoring a torn tail. The boolean reports whether any
// valid frame was found.
func decodeOffsetsLog(data []byte) ([]offsetEntry, uint64, bool) {
	r := frameReader{buf: data}
	var best []offsetEntry
	var bestGen uint64
	found := false
	for r.off < len(data) {
		gen, entries, err := r.decodeOffsetsFrame()
		if err != nil {
			break // torn/corrupt tail: earlier commits stand
		}
		if !found || gen >= bestGen {
			best, bestGen, found = entries, gen, true
		}
	}
	return best, bestGen, found
}
