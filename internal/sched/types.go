// Package sched implements FfDL's scheduling policies over an abstract
// cluster model so the same code drives both the live kube-like
// orchestrator (internal/kube) and the discrete-event experiments
// (internal/expt):
//
//   - Spread — the Kubernetes default placement the paper's first
//     prototype used (§3.4): prefer the least-allocated node.
//   - Pack — FfDL's replacement: cram a job's pods onto as few machines
//     as possible, minimizing GPU fragmentation.
//   - Gang scheduling with the Biased Sampling Algorithm (BSA, §3.5):
//     place all pods of a job atomically or queue the whole job.
//   - FCFS dispatch with largest-gang-first tie-break and no GPU
//     overcommitment (§3.6), plus quota-based admission control with
//     preemption of free-tier and over-quota jobs.
package sched

import "fmt"

// Resources is a multi-dimensional resource vector.
type Resources struct {
	// MilliCPU is CPU in thousandths of a core.
	MilliCPU int64
	// MemoryMB is RAM in mebibytes.
	MemoryMB int64
	// GPUs is the number of whole GPUs (no space-sharing; §3.6).
	GPUs int
}

// Add returns r + o.
func (r Resources) Add(o Resources) Resources {
	return Resources{
		MilliCPU: r.MilliCPU + o.MilliCPU,
		MemoryMB: r.MemoryMB + o.MemoryMB,
		GPUs:     r.GPUs + o.GPUs,
	}
}

// Sub returns r - o.
func (r Resources) Sub(o Resources) Resources {
	return Resources{
		MilliCPU: r.MilliCPU - o.MilliCPU,
		MemoryMB: r.MemoryMB - o.MemoryMB,
		GPUs:     r.GPUs - o.GPUs,
	}
}

// Fits reports whether a demand of o fits within r.
func (r Resources) Fits(o Resources) bool {
	return o.MilliCPU <= r.MilliCPU && o.MemoryMB <= r.MemoryMB && o.GPUs <= r.GPUs
}

// IsZero reports an all-zero vector.
func (r Resources) IsZero() bool {
	return r.MilliCPU == 0 && r.MemoryMB == 0 && r.GPUs == 0
}

// String implements fmt.Stringer.
func (r Resources) String() string {
	return fmt.Sprintf("cpu=%dm mem=%dMB gpu=%d", r.MilliCPU, r.MemoryMB, r.GPUs)
}

// Node is the scheduler's view of one machine.
type Node struct {
	// Name identifies the node.
	Name string
	// GPUType is the accelerator model ("K80", "P100", "V100"); pods may
	// constrain placement to a type, as FfDL jobs request specific GPUs.
	GPUType string
	// Capacity is the node's total allocatable resources.
	Capacity Resources
	// Free is what remains after current assignments.
	Free Resources
	// Unschedulable marks cordoned or NotReady nodes.
	Unschedulable bool
	// Pods counts pods currently assigned, for spread scoring.
	Pods int
}

// Clone copies the node.
func (n *Node) Clone() *Node {
	c := *n
	return &c
}

// PodSpec is one schedulable unit (a learner, parameter server or helper
// pod).
type PodSpec struct {
	// Name identifies the pod.
	Name string
	// JobID ties the pod to its DL job (its gang).
	JobID string
	// Demand is the pod's resource request.
	Demand Resources
	// GPUType constrains placement to nodes with this accelerator; empty
	// means any.
	GPUType string
}

// Gang is the unit of atomic placement: all pods of one DL job.
type Gang struct {
	// JobID names the job.
	JobID string
	// Pods lists every pod that must be co-scheduled.
	Pods []PodSpec
	// Priority orders preemption; higher is more important.
	Priority int
	// User owns the job, for quota accounting.
	User string
}

// TotalDemand sums the gang's resource requests.
func (g *Gang) TotalDemand() Resources {
	var total Resources
	for _, p := range g.Pods {
		total = total.Add(p.Demand)
	}
	return total
}

// GPUDemand returns the gang's total GPU request.
func (g *Gang) GPUDemand() int { return g.TotalDemand().GPUs }

// Assignment binds one pod to one node.
type Assignment struct {
	Pod  string
	Node string
}

// FailureReason mirrors the Kubernetes scheduler failure messages the
// paper catalogs in Table 8.
type FailureReason string

// Scheduling failure reasons (Table 8 vocabulary).
const (
	ReasonNoNodesAvailable FailureReason = "No nodes available that match all of the predicates"
	ReasonInsufficientGPU  FailureReason = "Insufficient alpha.kubernetes.io/nvidia-gpu"
	ReasonNodeSelector     FailureReason = "MatchNodeSelector"
	ReasonUnschedulable    FailureReason = "NodeUnschedulable"
)

// Failure explains why placement did not happen.
type Failure struct {
	Reason  FailureReason
	Message string
}

// Error implements error.
func (f *Failure) Error() string {
	return fmt.Sprintf("sched: %s: %s", f.Reason, f.Message)
}

// ClusterState is a mutable scratch copy of the cluster the policies
// place against. Policies mutate Free/Pods on assignment so multi-pod
// placements account for earlier pods of the same gang.
type ClusterState struct {
	Nodes []*Node
	index map[string]*Node
}

// NewClusterState builds a state over cloned nodes.
func NewClusterState(nodes []*Node) *ClusterState {
	cs := &ClusterState{index: make(map[string]*Node, len(nodes))}
	for _, n := range nodes {
		c := n.Clone()
		cs.Nodes = append(cs.Nodes, c)
		cs.index[c.Name] = c
	}
	return cs
}

// Node returns a node by name.
func (cs *ClusterState) Node(name string) *Node { return cs.index[name] }

// Assign consumes resources for a pod on a node.
func (cs *ClusterState) Assign(nodeName string, demand Resources) {
	n := cs.index[nodeName]
	n.Free = n.Free.Sub(demand)
	n.Pods++
}

// Release returns a pod's resources to a node.
func (cs *ClusterState) Release(nodeName string, demand Resources) {
	n := cs.index[nodeName]
	n.Free = n.Free.Add(demand)
	if n.Pods > 0 {
		n.Pods--
	}
}

// Clone deep-copies the state, for speculative placement.
func (cs *ClusterState) Clone() *ClusterState {
	return NewClusterState(cs.Nodes)
}

// TotalGPUs returns (free, capacity) GPU counts over schedulable nodes.
func (cs *ClusterState) TotalGPUs() (free, capacity int) {
	for _, n := range cs.Nodes {
		if n.Unschedulable {
			continue
		}
		free += n.Free.GPUs
		capacity += n.Capacity.GPUs
	}
	return free, capacity
}

// feasible reports whether the pod can land on the node right now, and
// the reason when it cannot.
func feasible(p *PodSpec, n *Node) (bool, FailureReason) {
	if n.Unschedulable {
		return false, ReasonUnschedulable
	}
	if p.GPUType != "" && n.GPUType != p.GPUType {
		return false, ReasonNodeSelector
	}
	if p.Demand.GPUs > n.Free.GPUs {
		return false, ReasonInsufficientGPU
	}
	if !n.Free.Fits(p.Demand) {
		return false, ReasonNoNodesAvailable
	}
	return true, ""
}

// FeasibleNodes returns the nodes a pod could land on and, when empty,
// the dominant failure reason across nodes (the predicate breakdown the
// paper extracts from FailedScheduling logs).
func (cs *ClusterState) FeasibleNodes(p *PodSpec) ([]*Node, FailureReason) {
	var out []*Node
	counts := map[FailureReason]int{}
	for _, n := range cs.Nodes {
		ok, reason := feasible(p, n)
		if ok {
			out = append(out, n)
		} else {
			counts[reason]++
		}
	}
	if len(out) > 0 {
		return out, ""
	}
	best := ReasonNoNodesAvailable
	bestN := -1
	for r, c := range counts {
		if c > bestN || (c == bestN && r < best) {
			best, bestN = r, c
		}
	}
	return nil, best
}
