package chaos

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/ffdl/ffdl/internal/commitlog"
	"github.com/ffdl/ffdl/internal/core"
	"github.com/ffdl/ffdl/internal/mongo"
	"github.com/ffdl/ffdl/internal/perf"
)

// restartConfig is the DataDir-backed platform config the restart tests
// boot: real clock, fast control loops (the core test idiom), and a
// time compression that makes training take real wall time — so a job
// can be caught genuinely mid-PROCESSING when the world ends.
func restartConfig(dir string) core.Config {
	return core.Config{
		Seed:              7,
		DataDir:           dir,
		PollInterval:      2 * time.Millisecond,
		RendezvousTimeout: 10 * time.Second,
		TimeCompression:   2e-5,
	}
}

// provisionWorld recreates the external world after each boot: worker
// nodes and the dataset bucket (kube state and the object store are
// in-memory and do not survive a process restart — redeployed jobs
// re-download their data).
func provisionWorld(p *core.Platform) error {
	for _, n := range []string{"node0", "node1"} {
		p.AddNode(n, "K80", 4, 32, 256<<10)
	}
	p.Store.EnsureBucket("datasets")
	return p.Store.Put("datasets", "mnist/shard-0", bytes.Repeat([]byte{1}, 1<<20))
}

func restartManifest(iters int) core.Manifest {
	return core.Manifest{
		Name: "restart-train", User: "alice",
		Framework: perf.Caffe, Model: perf.VGG16,
		Learners: 1, GPUsPerLearner: 1, GPUType: perf.K80,
		BatchSize: 64, Iterations: iters, CheckpointEvery: 10,
		DataBucket: "datasets", DataPrefix: "mnist/",
		Command: "caffe train -solver solver.prototxt",
	}
}

func waitFor(t *testing.T, c *core.Client, jobID string, want core.JobStatus, timeout time.Duration) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	got, err := c.WaitForStatus(ctx, jobID, want, 2*time.Millisecond)
	if err != nil {
		t.Fatalf("waiting for %s on %s: %v", want, jobID, err)
	}
	if got != want {
		t.Fatalf("job %s reached %s, want %s", jobID, got, want)
	}
}

// TestRestartTheWorldDurability is the headline cold-restart test: the
// entire platform is torn down mid-workload — one job COMPLETED with a
// follower holding a saved log offset and a durable consumer cursor,
// one job mid-PROCESSING, churn deep enough that the oplog's retained
// floor rose — and reopened from the same DataDir. Resume tokens,
// learner-log offsets and oplog floors must all survive: FollowLogsFrom
// resumes at the exact saved offset with no duplicate or missing lines,
// change streams resume by Seq or see an explicit resync, WatchStatus
// reconnects are served by bus-log replay (watch.replays), and the
// mid-flight job is redeployed to completion by the LCM recovery scan.
func TestRestartTheWorldDurability(t *testing.T) {
	dir := t.TempDir()
	r, err := NewProcessRestart(restartConfig(dir), provisionWorld)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	p := r.Platform()
	c := p.Client()
	ctx := context.Background()

	// --- Generation 1: build up durable state. ---

	// Job A runs to completion and leaves learner logs behind.
	jobA, err := c.Submit(ctx, restartManifest(30))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, c, jobA, core.StatusCompleted, 30*time.Second)
	linesA, err := c.Logs(ctx, jobA)
	if err != nil || len(linesA) < 4 {
		t.Fatalf("job A logs = %d lines, err=%v; need >= 4", len(linesA), err)
	}
	histA, err := c.Status(ctx, jobA)
	if err != nil {
		t.Fatal(err)
	}

	// A follower consumed half of A's log: its resume token is the first
	// unconsumed offset, persisted as a durable consumer cursor.
	mid := len(linesA) / 2
	savedNext := linesA[mid].Offset
	if err := p.Metrics.CommitLogCursor(jobA, "cli-follower", savedNext); err != nil {
		t.Fatalf("CommitLogCursor: %v", err)
	}

	// Churn a scratch collection hard enough that oplog compaction (and
	// the reopen after it) raises the retained floor above seq 1.
	scratch := p.Mongo.C("scratch")
	if _, err := scratch.Insert(mongo.Doc{"_id": "doc", "n": 0}); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5000; i++ {
		if err := scratch.UpdateOne(mongo.Filter{"_id": "doc"}, mongo.Update{Set: mongo.Doc{"n": i}}); err != nil {
			t.Fatal(err)
		}
	}

	// A change-stream resume token taken just before job B's writes.
	seqBeforeB := p.Mongo.OplogLen()

	// Job B trains long enough (~seconds of wall time at this
	// compression) to be killed mid-PROCESSING, with a watcher
	// mid-stream on its status.
	jobB, err := c.Submit(ctx, restartManifest(4000))
	if err != nil {
		t.Fatal(err)
	}
	watchCtx, cancelWatch := context.WithCancel(ctx)
	bCh, stopWatch, err := c.WatchStatus(watchCtx, jobB)
	if err != nil {
		t.Fatal(err)
	}
	var watchMu sync.Mutex
	var preEntries []core.StatusEntry
	go func() {
		for e := range bCh {
			watchMu.Lock()
			preEntries = append(preEntries, e)
			watchMu.Unlock()
		}
	}()
	waitFor(t, c, jobB, core.StatusProcessing, 30*time.Second)

	preOplogLen := p.Mongo.OplogLen()
	preLinesB, _ := c.Logs(ctx, jobB)

	// --- The world ends. ---
	p2, err := r.Restart()
	if err != nil {
		t.Fatalf("Restart: %v", err)
	}
	cancelWatch()
	stopWatch()
	c2 := p2.Client()
	t.Logf("reopen latency: %v", r.ReopenLatency())

	// Job B must have been killed mid-flight, and the recovered store
	// must still say so (non-terminal, at PROCESSING rank).
	recB, err := p2.Jobs.FindOne(mongo.Filter{"_id": jobB})
	if err != nil {
		t.Fatalf("job B not recovered: %v", err)
	}
	if st, _ := recB["status"].(string); core.JobStatus(st).Terminal() {
		t.Fatalf("job B recovered as terminal %q — restart missed the mid-flight window", st)
	}

	// Oplog state survived: sequence resumed, floor rose past 1.
	if got := p2.Mongo.OplogLen(); got != preOplogLen {
		t.Fatalf("recovered OplogLen %d, want %d", got, preOplogLen)
	}
	if floor := p2.Mongo.OplogFloor(); floor <= 1 {
		t.Fatalf("recovered oplog floor = %d, want > 1 after churn", floor)
	}

	// Job A's record and full status history survived.
	replyA, err := c2.Status(ctx, jobA)
	if err != nil {
		t.Fatalf("job A not recovered: %v", err)
	}
	if replyA.Status != core.StatusCompleted || len(replyA.History) != len(histA.History) {
		t.Fatalf("job A recovered as %s with %d history entries, want COMPLETED with %d",
			replyA.Status, len(replyA.History), len(histA.History))
	}

	// Job A's learner log survived byte for byte: same lines, same
	// offsets.
	linesA2, err := c2.Logs(ctx, jobA)
	if err != nil {
		t.Fatal(err)
	}
	if len(linesA2) != len(linesA) {
		t.Fatalf("job A recovered %d log lines, want %d", len(linesA2), len(linesA))
	}
	for i := range linesA {
		if linesA2[i].Offset != linesA[i].Offset || linesA2[i].Text != linesA[i].Text {
			t.Fatalf("job A line %d diverged after restart: %+v vs %+v", i, linesA2[i], linesA[i])
		}
	}

	// The durable consumer cursor survived exactly.
	if next, ok := p2.Metrics.LogCursor(jobA, "cli-follower"); !ok || next != savedNext {
		t.Fatalf("recovered cursor = (%d, %v), want (%d, true)", next, ok, savedNext)
	}

	// FollowLogsFrom resumes at the exact saved offset: no duplicate, no
	// missing line.
	want := linesA[mid:]
	followCtx, cancelFollow := context.WithTimeout(ctx, 10*time.Second)
	var got []core.LogLine
	err = c2.FollowLogsFrom(followCtx, jobA, savedNext, func(l core.LogLine) {
		got = append(got, l)
		if len(got) == len(want) {
			cancelFollow()
		}
	})
	cancelFollow()
	if err != nil {
		t.Fatalf("FollowLogsFrom: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("resumed follow got %d lines, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Offset != want[i].Offset || got[i].Text != want[i].Text {
			t.Fatalf("resumed line %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// A change stream whose token predates the recovered floor gets an
	// explicit resync marker — never a silent gap.
	csOld := p2.Mongo.Watch("scratch", 1)
	if ev := <-csOld.Events(); ev.Kind != "resync" {
		t.Fatalf("pre-floor resume delivered Kind %q first, want resync", ev.Kind)
	}
	csOld.Cancel()

	// A change stream resumed from a retained token resumes by Seq: no
	// resync, strictly increasing, and it observes job B's insert.
	csB := p2.Mongo.Watch("jobs", seqBeforeB)
	sawB := false
	last := seqBeforeB
	for !sawB {
		select {
		case ev := <-csB.Events():
			if ev.Kind == "resync" {
				t.Fatalf("retained-token resume delivered resync (floor %d, token %d)", p2.Mongo.OplogFloor(), seqBeforeB)
			}
			if ev.Seq <= last {
				t.Fatalf("change stream Seq went backwards: %d after %d", ev.Seq, last)
			}
			last = ev.Seq
			if ev.ID == jobB && ev.Kind == "insert" {
				sawB = true
			}
		case <-time.After(10 * time.Second):
			t.Fatal("change stream never delivered job B's insert")
		}
	}
	csB.Cancel()

	// WatchStatus on the recovered job is served by bus-log replay: the
	// persisted replay window survived, so the reconnect replays instead
	// of refilling from MongoDB.
	wCtx, wCancel := context.WithTimeout(ctx, 60*time.Second)
	defer wCancel()
	ch2, stop2, err := c2.WatchStatus(wCtx, jobB)
	if err != nil {
		t.Fatalf("WatchStatus after restart: %v", err)
	}
	defer stop2()

	// The LCM recovery scan must redeploy the mid-flight job to
	// completion (it lost its Guardian, learners and volume with the
	// process).
	waitFor(t, c2, jobB, core.StatusCompleted, 60*time.Second)

	var postEntries []core.StatusEntry
	for e := range ch2 {
		postEntries = append(postEntries, e)
	}
	if len(postEntries) == 0 {
		t.Fatal("post-restart watch delivered no entries")
	}
	if lastE := postEntries[len(postEntries)-1]; lastE.Status != core.StatusCompleted {
		t.Fatalf("post-restart watch ended on %s, want COMPLETED", lastE.Status)
	}
	if n := p2.Metrics.Counter("watch.replays"); n < 1 {
		t.Fatalf("watch.replays = %d after reconnect, want >= 1 (refills = %d)",
			n, p2.Metrics.Counter("watch.refills"))
	}

	// The watcher that was mid-stream when the world ended saw a prefix
	// of B's history; the recovered history must extend it, not rewrite
	// it.
	watchMu.Lock()
	pre := append([]core.StatusEntry(nil), preEntries...)
	watchMu.Unlock()
	replyB, err := c2.Status(ctx, jobB)
	if err != nil {
		t.Fatal(err)
	}
	if len(replyB.History) < len(pre) {
		t.Fatalf("recovered history (%d) shorter than what a pre-restart watcher saw (%d)",
			len(replyB.History), len(pre))
	}
	for i := range pre {
		if replyB.History[i].Status != pre[i].Status {
			t.Fatalf("history[%d] rewritten across restart: %s vs %s",
				i, replyB.History[i].Status, pre[i].Status)
		}
	}

	// Job B's learner-log offsets survived and were never reused: the
	// pre-restart lines are an exact prefix, and every offset after them
	// is fresh and strictly increasing.
	linesB, err := c2.Logs(ctx, jobB)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range preLinesB {
		if i >= len(linesB) || linesB[i].Offset != l.Offset || linesB[i].Text != l.Text {
			t.Fatalf("job B pre-restart line %d not a prefix of the recovered log", i)
		}
	}
	for i := 1; i < len(linesB); i++ {
		if linesB[i].Offset <= linesB[i-1].Offset {
			t.Fatalf("job B log offsets not strictly increasing at %d: %d then %d",
				i, linesB[i-1].Offset, linesB[i].Offset)
		}
	}
}

// TestRestartTornTailLearnerLog reuses commitlog.FaultStore corruption
// injection under the real DataDir file layout: a byte of a learner-log
// segment frame is flipped at write time, the platform restarts, and
// recovery must keep exactly the strict prefix before the torn frame —
// with the durable consumer cursor intact and no recovered offset ever
// reassigned.
func TestRestartTornTailLearnerLog(t *testing.T) {
	dir := t.TempDir()
	const jobID = "jobX"

	var mu sync.Mutex
	var fault *commitlog.FaultStore
	cfg := restartConfig(dir)
	cfg.StoreWrapper = func(name string, s commitlog.SegmentStore) commitlog.SegmentStore {
		if name != "learner-logs/"+jobID {
			return s
		}
		fs := commitlog.NewFaultStore(s, -1) // never crash; corruption only
		mu.Lock()
		fault = fs
		mu.Unlock()
		return fs
	}

	p, err := core.NewPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stopped := false
	defer func() {
		if !stopped {
			p.Stop()
		}
	}()

	// 50 intact lines, then a durable cursor at offset 31 (lines 1..30
	// consumed).
	for i := 1; i <= 50; i++ {
		p.Metrics.AppendLog(core.LogLine{JobID: jobID, Learner: 0, Time: time.Now(), Text: fmt.Sprintf("line-%03d", i)})
	}
	const savedCursor = 31
	if err := p.Metrics.CommitLogCursor(jobID, "reader", savedCursor); err != nil {
		t.Fatal(err)
	}

	// Corrupt a byte 10 positions into the NEXT write: line 51's frame is
	// torn on disk; 52..60 land after it in the same segment and are
	// unreachable past the tear.
	mu.Lock()
	if fault == nil {
		t.Fatal("StoreWrapper never saw the learner log store")
	}
	fault.CorruptAt(fault.Written()+10, 0xFF)
	mu.Unlock()
	for i := 51; i <= 60; i++ {
		p.Metrics.AppendLog(core.LogLine{JobID: jobID, Learner: 0, Time: time.Now(), Text: fmt.Sprintf("line-%03d", i)})
	}

	p.Stop()
	stopped = true

	// Reopen the same DataDir without the wrapper: recovery reads the
	// corrupted bytes the FaultStore let through to the real files.
	cfg2 := restartConfig(dir)
	p2, err := core.NewPlatform(cfg2)
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer p2.Stop()

	lines := p2.Metrics.Logs(jobID)
	if len(lines) != 50 {
		t.Fatalf("recovered %d lines, want exactly the 50 before the torn frame", len(lines))
	}
	for i, l := range lines {
		// Learner-log offsets are 0-based (commitlog default FirstOffset).
		wantText := fmt.Sprintf("line-%03d", i+1)
		if l.Text != wantText || l.Offset != uint64(i) {
			t.Fatalf("recovered line %d = (%d, %q), want (%d, %q) — not a strict prefix",
				i, l.Offset, l.Text, i, wantText)
		}
	}

	// The consumer cursor survived exactly.
	if next, ok := p2.Metrics.LogCursor(jobID, "reader"); !ok || next != savedCursor {
		t.Fatalf("recovered cursor = (%d, %v), want (%d, true)", next, ok, savedCursor)
	}

	// No recovered offset is ever reassigned: a fresh append lands past
	// the recovered tail.
	p2.Metrics.AppendLog(core.LogLine{JobID: jobID, Learner: 0, Time: time.Now(), Text: "post-recovery"})
	all := p2.Metrics.Logs(jobID)
	fresh := all[len(all)-1]
	if fresh.Text != "post-recovery" || fresh.Offset <= lines[len(lines)-1].Offset {
		t.Fatalf("post-recovery append got offset %d, want > %d (no reuse of recovered offsets)",
			fresh.Offset, lines[len(lines)-1].Offset)
	}
	if fresh.Offset <= savedCursor {
		t.Fatalf("post-recovery offset %d at or below the acked cursor %d", fresh.Offset, savedCursor)
	}
}

// TestRestartEmptyDataDir: reopening a DataDir that was never written
// is a clean empty platform (and a second boot of the same empty dir is
// too).
func TestRestartEmptyDataDir(t *testing.T) {
	dir := t.TempDir()
	r, err := NewProcessRestart(restartConfig(dir), provisionWorld)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	p2, err := r.Restart()
	if err != nil {
		t.Fatal(err)
	}
	if n := p2.Jobs.Len(); n != 0 {
		t.Fatalf("empty DataDir recovered %d jobs", n)
	}
	if got := p2.Mongo.OplogLen(); got != 0 {
		t.Fatalf("empty DataDir OplogLen = %d", got)
	}
}
