package expt

import (
	"fmt"
	"sort"
	"time"

	"github.com/ffdl/ffdl/internal/obs"
)

// The observability-overhead experiment: proof that the unified metrics
// registry and per-job tracer are free when idle and near-free when
// hot. It runs the end-to-end throughput stage (submissions dispatched
// per wall second through the full platform) in interleaved pairs —
// one arm fully instrumented, one with Config.DisableObs stripping
// every hot-path instrument and the tracer — and gates the median
// throughput ratio at a configured tolerance. Pairs are interleaved
// (instrumented, ablation, instrumented, ablation, ...) so machine
// noise drifts across both arms equally, and the median ratio discards
// outlier pairs entirely.

// ObsOverheadConfig parameterizes one gate run.
type ObsOverheadConfig struct {
	// Submitters is the per-arm submitter concurrency. Default 16.
	Submitters int
	// Jobs is the per-arm submission count. Default 2×Submitters.
	Jobs int
	// Pairs is how many instrumented/ablation pairs to run; the gate
	// uses the median pairwise ratio. Default 3.
	Pairs int
	// TolerancePct is the maximum accepted throughput loss, in percent.
	// Default 5 (the CI gate).
	TolerancePct float64
	// Seed drives platform randomness (both arms share it).
	Seed int64
	// SettleWall is the FakeClock auto-advance quiescence window.
	SettleWall time.Duration
	// Timeout bounds each arm's end-to-end stage in wall time.
	Timeout time.Duration
}

func (c *ObsOverheadConfig) defaults() {
	if c.Submitters <= 0 {
		c.Submitters = 16
	}
	if c.Jobs <= 0 {
		c.Jobs = 2 * c.Submitters
	}
	if c.Pairs <= 0 {
		c.Pairs = 3
	}
	if c.TolerancePct <= 0 {
		c.TolerancePct = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// ObsOverheadPair is one interleaved instrumented/ablation pair.
type ObsOverheadPair struct {
	InstrumentedPerSec float64 `json:"instrumented_per_sec"`
	AblationPerSec     float64 `json:"ablation_per_sec"`
	// Ratio is instrumented/ablation throughput: 1.0 = free, <1 = the
	// instrumented arm paid something.
	Ratio float64 `json:"ratio"`
}

// ObsOverheadResult reports the gate.
type ObsOverheadResult struct {
	Submitters   int               `json:"submitters"`
	Jobs         int               `json:"jobs"`
	Pairs        []ObsOverheadPair `json:"pairs"`
	MedianRatio  float64           `json:"median_ratio"`
	OverheadPct  float64           `json:"overhead_pct"`
	TolerancePct float64           `json:"tolerance_pct"`
	WithinBudget bool              `json:"within_budget"`
	// Sanity counters from the instrumented arm's final snapshot: the
	// comparison is vacuous if the instruments recorded nothing.
	HistogramObservations uint64  `json:"histogram_observations"`
	CounterNames          int     `json:"counter_names"`
	WallSeconds           float64 `json:"wall_seconds"`
}

// ObsOverhead runs the gate once.
func ObsOverhead(cfg ObsOverheadConfig) (ObsOverheadResult, error) {
	cfg.defaults()
	res := ObsOverheadResult{
		Submitters:   cfg.Submitters,
		Jobs:         cfg.Jobs,
		TolerancePct: cfg.TolerancePct,
	}
	wallStart := time.Now()
	var lastSnap obs.Snapshot
	arm := func(disable bool, seedOffset int64) (float64, error) {
		tc := ThroughputConfig{
			Submitters: cfg.Submitters,
			Jobs:       cfg.Jobs,
			Seed:       cfg.Seed + seedOffset,
			SettleWall: cfg.SettleWall,
			Timeout:    cfg.Timeout,
			DisableObs: disable,
		}
		if !disable {
			tc.snapshotSink = func(s obs.Snapshot) { lastSnap = s }
		}
		tc.defaults()
		var tr ThroughputResult
		if err := throughputE2E(tc, &tr); err != nil {
			return 0, err
		}
		return tr.DispatchedPerSec, nil
	}
	for i := 0; i < cfg.Pairs; i++ {
		inst, err := arm(false, int64(i))
		if err != nil {
			return res, fmt.Errorf("expt: obs-overhead instrumented arm %d: %w", i, err)
		}
		abl, err := arm(true, int64(i))
		if err != nil {
			return res, fmt.Errorf("expt: obs-overhead ablation arm %d: %w", i, err)
		}
		pair := ObsOverheadPair{InstrumentedPerSec: inst, AblationPerSec: abl}
		if abl > 0 {
			pair.Ratio = inst / abl
		}
		res.Pairs = append(res.Pairs, pair)
	}
	ratios := make([]float64, 0, len(res.Pairs))
	for _, p := range res.Pairs {
		ratios = append(ratios, p.Ratio)
	}
	sort.Float64s(ratios)
	res.MedianRatio = ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		res.MedianRatio = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}
	res.OverheadPct = (1 - res.MedianRatio) * 100
	res.WithinBudget = res.OverheadPct <= cfg.TolerancePct
	for _, h := range lastSnap.Histograms {
		res.HistogramObservations += h.Count
	}
	res.CounterNames = len(lastSnap.Counters)
	res.WallSeconds = time.Since(wallStart).Seconds()
	return res, nil
}

// RenderObsOverhead formats the gate result as a table.
func RenderObsOverhead(r ObsOverheadResult) *Table {
	t := &Table{
		Title:  "Observability overhead: instrumented vs DisableObs ablation (end-to-end dispatch throughput)",
		Header: []string{"Pair", "Instrumented/s", "Ablation/s", "Ratio"},
	}
	for i, p := range r.Pairs {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i+1), f2(p.InstrumentedPerSec), f2(p.AblationPerSec), f2(p.Ratio),
		})
	}
	verdict := "WITHIN BUDGET"
	if !r.WithinBudget {
		verdict = "OVER BUDGET"
	}
	t.Caption = fmt.Sprintf(
		"Median ratio %.3f → %.2f%% overhead (tolerance %.0f%%): %s. Instrumented arm recorded %d histogram observations across %d counters.",
		r.MedianRatio, r.OverheadPct, r.TolerancePct, verdict,
		r.HistogramObservations, r.CounterNames)
	return t
}
