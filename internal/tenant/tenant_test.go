package tenant

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/ffdl/ffdl/internal/mongo"
	"github.com/ffdl/ffdl/internal/sched"
)

func gang(jobID, user string, gpus int) *sched.Gang {
	return &sched.Gang{
		JobID: jobID,
		User:  user,
		Pods: []sched.PodSpec{{
			Name:   jobID + "-l0",
			JobID:  jobID,
			Demand: sched.Resources{MilliCPU: 4000, MemoryMB: 16000, GPUs: gpus},
		}},
	}
}

func job(id, user string, gpus int, at time.Time) Job {
	return Job{ID: id, User: user, Gang: gang(id, user, gpus), Submitted: at}
}

// fakeBackend is an in-memory platform for dispatcher unit tests.
type fakeBackend struct {
	mu         sync.Mutex
	phase      map[string]Phase
	job        map[string]Job
	preempted  map[string]bool
	dispatched []string
	resumed    []string
	halted     []string
	failed     map[string]string
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{
		phase:     make(map[string]Phase),
		job:       make(map[string]Job),
		preempted: make(map[string]bool),
		failed:    make(map[string]string),
	}
}

func (b *fakeBackend) add(j Job) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.job[j.ID] = j
	b.phase[j.ID] = PhaseQueued
}

func (b *fakeBackend) Dispatch(jobID string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.phase[jobID] != PhaseQueued {
		return fmt.Errorf("fake: %s not queued", jobID)
	}
	b.phase[jobID] = PhaseRunning
	b.dispatched = append(b.dispatched, jobID)
	return nil
}

func (b *fakeBackend) Preempt(jobID string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.preempted[jobID] = true
	b.halted = append(b.halted, jobID)
	b.phase[jobID] = PhaseHalted
	return nil
}

func (b *fakeBackend) Resume(jobID string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.phase[jobID] != PhaseHalted {
		return fmt.Errorf("fake: %s not halted", jobID)
	}
	b.phase[jobID] = PhaseRunning
	b.preempted[jobID] = false
	b.resumed = append(b.resumed, jobID)
	return nil
}

func (b *fakeBackend) Fail(jobID, reason string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failed[jobID] = reason
	b.phase[jobID] = PhaseTerminal
	return nil
}

func (b *fakeBackend) Lookup(jobID string) (Job, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	j, ok := b.job[jobID]
	if !ok {
		return Job{}, fmt.Errorf("fake: unknown job %s", jobID)
	}
	return j, nil
}

func (b *fakeBackend) Phase(jobID string) (Phase, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ph, ok := b.phase[jobID]
	if !ok {
		return 0, fmt.Errorf("fake: unknown job %s", jobID)
	}
	return ph, nil
}

func (b *fakeBackend) PendingWork() (queued, preempted []Job) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for id, ph := range b.phase {
		switch {
		case ph == PhaseQueued:
			queued = append(queued, b.job[id])
		case ph == PhaseHalted && b.preempted[id]:
			preempted = append(preempted, b.job[id])
		}
	}
	return queued, preempted
}

func (b *fakeBackend) finish(d *Dispatcher, jobID string) {
	b.mu.Lock()
	b.phase[jobID] = PhaseTerminal
	b.mu.Unlock()
	d.NoteTerminal(jobID)
}

// newTestDispatcher wires a dispatcher over a fake backend without
// starting the loop; tests drive dispatch/resync directly for
// determinism.
func newTestDispatcher(t *testing.T, clusterGPUs int, quotas ...Record) (*Dispatcher, *fakeBackend, *sched.Admission) {
	t.Helper()
	adm := sched.NewAdmission(clusterGPUs)
	for _, q := range quotas {
		adm.SetQuota(q.Quota())
	}
	b := newFakeBackend()
	d := NewDispatcher(Config{Backend: b, Admission: adm})
	return d, b, adm
}

func TestRegistryPutGetListWatch(t *testing.T) {
	db := mongo.NewDB()
	r := NewRegistry(db)
	cs := r.Watch(r.Seq())
	defer cs.Cancel()

	if err := r.Put(Record{User: "alice", Tier: sched.TierPaid, GPUs: 8}); err != nil {
		t.Fatal(err)
	}
	if err := r.Put(Record{User: "bob", Tier: sched.TierFree, GPUs: 2}); err != nil {
		t.Fatal(err)
	}
	if err := r.Put(Record{User: "alice", Tier: sched.TierPaid, GPUs: 12}); err != nil {
		t.Fatal(err) // update in place
	}
	if err := r.Put(Record{User: "", Tier: sched.TierFree, GPUs: 1}); err == nil {
		t.Fatal("empty user accepted")
	}
	if err := r.Put(Record{User: "x", Tier: 99, GPUs: 1}); err == nil {
		t.Fatal("bogus tier accepted")
	}

	rec, ok := r.Get("alice")
	if !ok || rec.GPUs != 12 || rec.Tier != sched.TierPaid {
		t.Fatalf("Get(alice) = %+v %v", rec, ok)
	}
	list := r.List()
	if len(list) != 2 || list[0].User != "alice" || list[1].User != "bob" {
		t.Fatalf("List = %+v", list)
	}

	// The change feed carries every accepted write, post-image included.
	seen := 0
	timeout := time.After(2 * time.Second)
	for seen < 3 {
		select {
		case ev := <-cs.Events():
			if ev.Doc == nil {
				continue
			}
			if rec, ok := docToRecord(ev.Doc); !ok || rec.User == "" {
				t.Fatalf("feed doc undecodable: %+v", ev.Doc)
			}
			seen++
		case <-timeout:
			t.Fatalf("change feed delivered %d/3 writes", seen)
		}
	}

	adm := sched.NewAdmission(0)
	r.Seed(adm)
	if q, ok := adm.Quota("bob"); !ok || q.Tier != sched.TierFree || q.GPUs != 2 {
		t.Fatalf("seeded quota = %+v %v", q, ok)
	}
}

func TestDispatcherAdmitsInOrderAndQueuesOverCapacity(t *testing.T) {
	d, b, _ := newTestDispatcher(t, 4,
		Record{User: "alice", Tier: sched.TierPaid, GPUs: 4},
		Record{User: "bob", Tier: sched.TierPaid, GPUs: 4})
	t0 := time.Unix(0, 0)

	j1 := job("j1", "alice", 4, t0)
	j2 := job("j2", "bob", 2, t0.Add(time.Second))
	j3 := job("j3", "bob", 2, t0.Add(2*time.Second))
	for _, j := range []Job{j1, j2, j3} {
		b.add(j)
		d.NoteQueued(j)
	}
	d.dispatch()
	if len(b.dispatched) != 1 || b.dispatched[0] != "j1" {
		t.Fatalf("dispatched = %v, want [j1]", b.dispatched)
	}
	// j2 and j3 wait behind the exhausted budget, FCFS positions 1, 2.
	if pos, ok := d.Position("j2"); !ok || pos != 1 {
		t.Fatalf("Position(j2) = %d %v", pos, ok)
	}
	if pos, ok := d.Position("j3"); !ok || pos != 2 {
		t.Fatalf("Position(j3) = %d %v", pos, ok)
	}
	// j1 finishing frees the budget: both queued jobs dispatch.
	b.finish(d, "j1")
	d.dispatch()
	if len(b.dispatched) != 3 || b.dispatched[1] != "j2" || b.dispatched[2] != "j3" {
		t.Fatalf("dispatched = %v, want j2 then j3", b.dispatched)
	}
	if d.QueueDepth() != 0 {
		t.Fatalf("queue depth = %d", d.QueueDepth())
	}
	st := d.Stats()
	if st.Dispatched != 3 {
		t.Fatalf("stats.Dispatched = %d", st.Dispatched)
	}
}

func TestDispatcherFailsUnknownUser(t *testing.T) {
	d, b, _ := newTestDispatcher(t, 4, Record{User: "alice", Tier: sched.TierPaid, GPUs: 4})
	j := job("ghost", "nobody", 1, time.Unix(0, 0))
	b.add(j)
	d.NoteQueued(j)
	d.dispatch()
	if _, ok := b.failed["ghost"]; !ok {
		t.Fatalf("unknown-user job not failed: %+v", b.failed)
	}
	if d.QueueDepth() != 0 {
		t.Fatal("failed job still queued")
	}
}

func TestDispatcherPreemptsHaltsRequeuesAndResumes(t *testing.T) {
	d, b, adm := newTestDispatcher(t, 4,
		Record{User: "freeloader", Tier: sched.TierFree, GPUs: 1},
		Record{User: "payer", Tier: sched.TierPaid, GPUs: 4})
	t0 := time.Unix(0, 0)

	// Free-tier job takes the whole cluster over-quota.
	jf := job("free-job", "freeloader", 4, t0)
	b.add(jf)
	d.NoteQueued(jf)
	d.dispatch()
	if len(b.dispatched) != 1 {
		t.Fatalf("free job not dispatched: %v", b.dispatched)
	}

	// The quota owner arrives: in-quota demand preempts the free job.
	jp := job("paid-job", "payer", 4, t0.Add(time.Minute))
	b.add(jp)
	d.NoteQueued(jp)
	d.dispatch()
	if len(b.halted) != 1 || b.halted[0] != "free-job" {
		t.Fatalf("halted = %v, want [free-job]", b.halted)
	}
	if len(b.dispatched) != 2 || b.dispatched[1] != "paid-job" {
		t.Fatalf("dispatched = %v, want paid-job after preemption", b.dispatched)
	}
	// The victim's HALTED transition requeues it as a victim.
	d.NoteHalted("free-job")
	if pos, ok := d.Position("free-job"); !ok || pos != 1 {
		t.Fatalf("victim position = %d %v, want head", pos, ok)
	}
	// Still no capacity: the victim must wait, and must NOT preempt.
	d.dispatch()
	if len(b.resumed) != 0 {
		t.Fatalf("victim resumed without capacity: %v", b.resumed)
	}
	if len(b.halted) != 1 {
		t.Fatalf("victim triggered preemption: %v", b.halted)
	}
	// The paid job finishing frees the budget: the victim resumes.
	b.finish(d, "paid-job")
	d.dispatch()
	if len(b.resumed) != 1 || b.resumed[0] != "free-job" {
		t.Fatalf("resumed = %v, want [free-job]", b.resumed)
	}
	if got := adm.Usage("freeloader"); got != 4 {
		t.Fatalf("victim footprint after resume = %d, want 4", got)
	}
	st := d.Stats()
	if st.Preempted != 1 || st.Requeued != 1 || st.Resumed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	delays := d.QueueDelays()
	if len(delays) != 3 {
		t.Fatalf("delays = %+v", delays)
	}
}

// TestDispatcherFailsInfeasibleHeadInsteadOfWedging: a gang bigger
// than the whole cluster can never be admitted; in strict FCFS it must
// be failed visibly, not left blocking every tenant behind it.
func TestDispatcherFailsInfeasibleHeadInsteadOfWedging(t *testing.T) {
	d, b, _ := newTestDispatcher(t, 4,
		Record{User: "alice", Tier: sched.TierPaid, GPUs: 16},
		Record{User: "bob", Tier: sched.TierPaid, GPUs: 4})
	t0 := time.Unix(0, 0)
	huge := job("huge", "alice", 8, t0) // 8 GPUs on a 4-GPU cluster
	ok := job("ok", "bob", 2, t0.Add(time.Second))
	for _, j := range []Job{huge, ok} {
		b.add(j)
		d.NoteQueued(j)
	}
	d.dispatch()
	if _, failed := b.failed["huge"]; !failed {
		t.Fatalf("infeasible head not failed: %+v", b.failed)
	}
	if len(b.dispatched) != 1 || b.dispatched[0] != "ok" {
		t.Fatalf("queue stayed wedged behind the infeasible head: %v", b.dispatched)
	}
}

// TestDispatcherKnownZeroCapacityAdmitsNothing: a cluster that has (or
// lost) all its nodes reports capacity as a negative sentinel, which
// must admit nothing — 0 still means the legacy "unlimited".
func TestDispatcherKnownZeroCapacityAdmitsNothing(t *testing.T) {
	d, b, _ := newTestDispatcher(t, 4, Record{User: "alice", Tier: sched.TierPaid, GPUs: 4})
	d.SetClusterGPUs(-1) // node watch: zero GPUs registered
	j := job("early", "alice", 2, time.Unix(0, 0))
	b.add(j)
	d.NoteQueued(j)
	d.dispatch()
	if len(b.dispatched) != 0 {
		t.Fatalf("dispatched %v with zero cluster capacity", b.dispatched)
	}
	if _, failed := b.failed["early"]; failed {
		t.Fatalf("zero-capacity queue failed the job instead of waiting: %+v", b.failed)
	}
	// Capacity appears: the job dispatches.
	d.SetClusterGPUs(4)
	d.dispatch()
	if len(b.dispatched) != 1 {
		t.Fatalf("job not dispatched after capacity appeared: %v", b.dispatched)
	}
}

// TestStaleQueuedEventDoesNotDoubleCount: a QUEUED bus echo arriving
// after the job was already dispatched (resync raced the pump) must
// not produce a second dispatch record or inflated delay entry. The
// strict Backend.Dispatch (errors unless the job is still queued)
// enforces it.
func TestStaleQueuedEventDoesNotDoubleCount(t *testing.T) {
	d, b, _ := newTestDispatcher(t, 4, Record{User: "alice", Tier: sched.TierPaid, GPUs: 4})
	j := job("j1", "alice", 2, time.Unix(0, 0))
	b.add(j)
	d.NoteQueued(j)
	d.dispatch()
	if len(b.dispatched) != 1 {
		t.Fatalf("dispatched = %v", b.dispatched)
	}
	// The stale echo re-enqueues; the next pass must shed it quietly.
	d.NoteQueued(j)
	d.dispatch()
	if len(b.dispatched) != 1 {
		t.Fatalf("stale QUEUED event re-dispatched: %v", b.dispatched)
	}
	if st := d.Stats(); st.Dispatched != 1 {
		t.Fatalf("stats.Dispatched = %d, want 1", st.Dispatched)
	}
	if delays := d.QueueDelays(); len(delays) != 1 {
		t.Fatalf("delays = %+v, want a single record", delays)
	}
	if d.QueueDepth() != 0 {
		t.Fatalf("stale entry still queued")
	}
}

func TestDispatcherResyncRecoversMissedEvents(t *testing.T) {
	d, b, _ := newTestDispatcher(t, 4, Record{User: "alice", Tier: sched.TierPaid, GPUs: 4})
	// A job lands in the durable store but its QUEUED event is lost.
	j := job("lost", "alice", 2, time.Unix(0, 0))
	b.add(j)
	d.resync()
	if len(b.dispatched) != 1 || b.dispatched[0] != "lost" {
		t.Fatalf("resync did not recover the queued job: %v", b.dispatched)
	}

	// A preempted victim whose HALTED event was lost is requeued and
	// resumed by the next resync once capacity exists.
	v := job("victim", "alice", 2, time.Unix(1, 0))
	b.add(v)
	b.mu.Lock()
	b.phase["victim"] = PhaseHalted
	b.preempted["victim"] = true
	b.mu.Unlock()
	d.resync()
	if len(b.resumed) != 1 || b.resumed[0] != "victim" {
		t.Fatalf("resync did not resume the halted victim: %v", b.resumed)
	}
}

func TestDispatcherLoopWakesOnQuotaWrite(t *testing.T) {
	db := mongo.NewDB()
	r := NewRegistry(db)
	adm := sched.NewAdmission(4)
	b := newFakeBackend()
	d := NewDispatcher(Config{
		Backend: b, Registry: r, Admission: adm,
		ResyncInterval: time.Hour, // the quota event must do the waking
	})
	if err := r.Put(Record{User: "freeloader", Tier: sched.TierFree, GPUs: 4}); err != nil {
		t.Fatal(err)
	}
	if err := r.Put(Record{User: "payer", Tier: sched.TierPaid, GPUs: 2}); err != nil {
		t.Fatal(err)
	}
	d.Start()
	defer d.Stop()

	// The free-tier job takes the whole budget.
	jf := job("free-job", "freeloader", 4, time.Unix(0, 0))
	b.add(jf)
	d.NoteQueued(jf)
	waitFor(t, "free job dispatched", func() bool {
		b.mu.Lock()
		defer b.mu.Unlock()
		return len(b.dispatched) == 1
	})
	// The payer's 4-GPU job exceeds its 2-GPU quota: over-quota heads
	// wait for capacity instead of preempting.
	jp := job("paid-job", "payer", 4, time.Unix(1, 0))
	b.add(jp)
	d.NoteQueued(jp)
	time.Sleep(20 * time.Millisecond)
	if n := len(b.halted); n != 0 {
		t.Fatalf("over-quota head preempted: %v", b.halted)
	}
	// Raising the payer's quota makes the head in-quota; the registry
	// change feed must wake the loop — the hour-long resync never fires
	// here — and the dispatcher preempts the free job for it.
	if err := r.Put(Record{User: "payer", Tier: sched.TierPaid, GPUs: 8}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "quota raise preempts and dispatches", func() bool {
		b.mu.Lock()
		defer b.mu.Unlock()
		return len(b.halted) == 1 && len(b.dispatched) == 2
	})
	if d.Stats().QuotaEvents == 0 {
		t.Fatal("quota event not counted")
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
