package learner

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ffdl/ffdl/internal/nfs"
	"github.com/ffdl/ffdl/internal/objstore"
	"github.com/ffdl/ffdl/internal/perf"
	"github.com/ffdl/ffdl/internal/sim"
)

type fixture struct {
	vol   *nfs.Volume
	store *objstore.Service
	mount *objstore.Mount
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	prov := nfs.NewProvisioner(sim.NewRealClock(), sim.NewRNG(1))
	prov.BaseLatency, prov.LoadPenalty = 0, 0
	vol, err := prov.Provision("job1")
	if err != nil {
		t.Fatal(err)
	}
	store := objstore.New(objstore.Config{})
	store.EnsureBucket("data")
	store.EnsureBucket("results")
	if err := store.Put("data", "train/shard-0", make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	return &fixture{vol: vol, store: store, mount: store.NewMount("data", 64<<20)}
}

func (f *fixture) spec(ordinal, learners int) Spec {
	return Spec{
		JobID: "job1", Ordinal: ordinal, Learners: learners,
		Model: perf.ResNet50, Framework: perf.TensorFlow, GPUType: perf.V100,
		GPUs: 1, CPUThreads: 16, BatchSize: 64,
		Iterations: 50, CheckpointEvery: 10,
		Volume: f.vol, Mount: f.mount,
		DataBucket: "data", DataPrefix: "train/",
		ResultStore: f.store, ResultBucket: "results",
		TimeCompression: 0, // no sleeping in tests
	}
}

// runToExit runs a single learner and stops it once its exit file
// appears (as the platform does after the controller observes
// completion).
func runToExit(t *testing.T, p *Process, f *fixture, ordinal int) int {
	t.Helper()
	stop := make(chan struct{})
	done := make(chan int, 1)
	go func() { done <- p.Run(stop) }()
	exitPath := fmt.Sprintf("learners/%d/exit", ordinal)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if f.vol.Exists(exitPath) {
			close(stop)
			select {
			case code := <-done:
				return code
			case <-time.After(2 * time.Second):
				t.Fatal("learner did not exit after stop")
			}
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	t.Fatal("exit file never appeared")
	return -1
}

func TestSingleLearnerLifecycle(t *testing.T) {
	f := newFixture(t)
	p := New(f.spec(0, 1))
	code := runToExit(t, p, f, 0)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	data, err := f.vol.ReadFile("learners/0/exit")
	if err != nil || string(data) != "0" {
		t.Fatalf("exit file = %q err=%v", data, err)
	}
	st, _ := f.vol.ReadFile("learners/0/status")
	if string(st) != StatusCompleted {
		t.Fatalf("status = %q", st)
	}
	// Final model stored.
	if _, err := f.store.Get("results", "job1/model/final.bin"); err != nil {
		t.Fatalf("final model missing: %v", err)
	}
	// Logs emitted.
	logData, err := f.vol.ReadFile("learners/0/stdout.log")
	if err != nil || len(logData) == 0 {
		t.Fatal("no logs")
	}
	// Checkpoints written at the configured cadence.
	objs, _ := f.store.List("results", "job1/checkpoints/")
	if len(objs) != 5 {
		t.Fatalf("checkpoints = %d, want 5 (50 iters / every 10)", len(objs))
	}
}

func TestDistributedRendezvousAndCompletion(t *testing.T) {
	f := newFixture(t)
	const n = 3
	var wg sync.WaitGroup
	stops := make([]chan struct{}, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		stops[i] = make(chan struct{})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = New(f.spec(i, n)).Run(stops[i])
		}(i)
	}
	// Wait for all exit files, then stop all.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ready := 0
		for i := 0; i < n; i++ {
			if f.vol.Exists(fmt.Sprintf("learners/%d/exit", i)) {
				ready++
			}
		}
		if ready == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("learners never all completed")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < n; i++ {
		close(stops[i])
	}
	wg.Wait()
	for i, c := range codes {
		if c != 0 {
			t.Fatalf("learner %d exit = %d", i, c)
		}
	}
}

func TestRendezvousTimeoutWhenPeerMissing(t *testing.T) {
	f := newFixture(t)
	spec := f.spec(0, 2) // 2 learners but only one runs
	spec.RendezvousTimeout = 50 * time.Millisecond
	stop := make(chan struct{})
	defer close(stop)
	done := make(chan int, 1)
	go func() { done <- New(spec).Run(stop) }()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if f.vol.Exists("learners/0/exit") {
			data, _ := f.vol.ReadFile("learners/0/exit")
			if string(data) != "2" {
				t.Fatalf("exit file = %q, want 2 (rendezvous failure)", data)
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("learner never gave up on rendezvous")
}

func TestKillLeavesNoExitFile(t *testing.T) {
	f := newFixture(t)
	spec := f.spec(0, 1)
	spec.Iterations = 1_000_000 // effectively endless
	spec.TimeCompression = 1e-6
	stop := make(chan struct{})
	done := make(chan int, 1)
	go func() { done <- New(spec).Run(stop) }()
	// Let it reach PROCESSING, then kill.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := f.vol.ReadFile("learners/0/status")
		if err == nil && string(st) == StatusProcessing {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never reached PROCESSING")
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	select {
	case code := <-done:
		if code != 137 {
			t.Fatalf("exit = %d, want 137", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("kill did not stop learner")
	}
	if f.vol.Exists("learners/0/exit") {
		t.Fatal("killed learner wrote an exit file")
	}
}

func TestResumeFromLatestCheckpoint(t *testing.T) {
	f := newFixture(t)
	// Simulate a previous incarnation's checkpoints.
	for _, iter := range []int{10, 20, 30} {
		key := fmt.Sprintf("job1/checkpoints/ckpt-%09d", iter)
		if err := f.store.Put("results", key, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	spec := f.spec(0, 1)
	spec.Iterations = 40
	p := New(spec)
	if got := p.latestCheckpoint(); got != 30 {
		t.Fatalf("latestCheckpoint = %d, want 30", got)
	}
	code := runToExit(t, p, f, 0)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	// Progress file shows it trained 31..40, not from 1.
	prog, err := f.vol.ReadFile("learners/0/progress")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := strconv.Atoi(string(prog))
	if n != 40 {
		t.Fatalf("final progress = %d", n)
	}
	// Log mentions the resume.
	logData, _ := f.vol.ReadFile("learners/0/stdout.log")
	if !strings.Contains(string(logData), "resuming from checkpoint at iteration 30") {
		t.Fatalf("log missing resume line:\n%s", logData)
	}
}

func TestCheckpointKeysSortChronologically(t *testing.T) {
	f := newFixture(t)
	p := New(f.spec(0, 1))
	for _, iter := range []int{5, 50, 500, 5000} {
		if err := p.checkpoint(iter); err != nil {
			t.Fatal(err)
		}
	}
	objs, _ := f.store.List("results", "job1/checkpoints/")
	if len(objs) != 4 {
		t.Fatalf("count = %d", len(objs))
	}
	if got := p.latestCheckpoint(); got != 5000 {
		t.Fatalf("latest = %d, want 5000", got)
	}
}
