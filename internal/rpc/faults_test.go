package rpc

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ffdl/ffdl/internal/resilience"
)

// TestFaultsDropRescuedByPolicyDeadline pins the lost-request-frame fault:
// a fully cut link hangs the call until the balancer's resilience policy
// deadline abandons it, classified transient.
func TestFaultsDropRescuedByPolicyDeadline(t *testing.T) {
	_, addr := newEchoServer(t)
	reg := NewRegistry()
	reg.Add("echo", addr)
	faults := NewFaults(nil, 1)
	faults.Cut(addr, true)
	reg.SetFaults(faults)

	b := NewBalancer(reg, "echo")
	defer b.Close()
	b.Use(resilience.NewPolicy(resilience.Options{
		Name:     "echo",
		Attempts: 2,
		Deadline: 200 * time.Millisecond,
		Classify: ClassifyRPC,
	}))

	var resp echoResp
	start := time.Now()
	err := b.Call(context.Background(), "Echo", echoReq{Msg: "hi"}, &resp)
	if err == nil {
		t.Fatal("cut link must fail the call")
	}
	if resilience.Classify(err) != resilience.Transient {
		t.Fatalf("rescued call classified %v, want transient", resilience.Classify(err))
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("rescue took %v, deadline not enforced", elapsed)
	}
	if faults.Stats().Dropped == 0 {
		t.Fatal("no drops recorded")
	}

	// Heal the link: the same balancer recovers.
	faults.Cut(addr, false)
	if err := b.Call(context.Background(), "Echo", echoReq{Msg: "hi", N: 1}, &resp); err != nil {
		t.Fatalf("healed link: %v", err)
	}
	if resp.N != 2 {
		t.Fatalf("resp = %+v", resp)
	}
}

// TestFaultsDuplicateDelivery pins the duplicated-request fault: the
// server executes twice (at-least-once), the client sees exactly one
// reply and the late duplicate is discarded without corrupting the
// connection.
func TestFaultsDuplicateDelivery(t *testing.T) {
	s := NewServer()
	var execs atomic.Int64
	s.Register("Bump", echoReq{}, func(_ context.Context, arg any) (any, error) {
		execs.Add(1)
		return echoResp{N: arg.(echoReq).N + 1}, nil
	})
	addr, err := s.Listen()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	reg := NewRegistry()
	reg.Add("bump", addr)
	faults := NewFaults(nil, 1)
	faults.SetLink(addr, LinkFault{Dup: 1})
	reg.SetFaults(faults)
	b := NewBalancer(reg, "bump")
	defer b.Close()

	var resp echoResp
	if err := b.Call(context.Background(), "Bump", echoReq{N: 1}, &resp); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if resp.N != 2 {
		t.Fatalf("resp = %+v", resp)
	}
	deadline := time.Now().Add(2 * time.Second)
	for execs.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := execs.Load(); got != 2 {
		t.Fatalf("server executed %d times, want 2 (duplicate delivery)", got)
	}
	// Connection still healthy after the discarded duplicate response.
	faults.Heal()
	if err := b.Call(context.Background(), "Bump", echoReq{N: 5}, &resp); err != nil || resp.N != 6 {
		t.Fatalf("post-duplicate call: err=%v resp=%+v", err, resp)
	}
}

// TestFaultsDelay pins added link latency.
func TestFaultsDelay(t *testing.T) {
	_, addr := newEchoServer(t)
	reg := NewRegistry()
	reg.Add("echo", addr)
	faults := NewFaults(nil, 1)
	faults.SetLink(addr, LinkFault{Delay: 30 * time.Millisecond})
	reg.SetFaults(faults)
	b := NewBalancer(reg, "echo")
	defer b.Close()

	var resp echoResp
	start := time.Now()
	if err := b.Call(context.Background(), "Echo", echoReq{}, &resp); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("delayed call returned in %v, want >= 30ms", elapsed)
	}
	if faults.Stats().Delayed == 0 {
		t.Fatal("no delays recorded")
	}
}

// TestBalancerPolicyBreakerSheds pins breaker shedding on an RPC edge:
// repeated transient failures (no endpoints) trip the breaker, after
// which calls shed instantly without touching the transport.
func TestBalancerPolicyBreakerSheds(t *testing.T) {
	reg := NewRegistry() // no replicas registered
	b := NewBalancer(reg, "ghost")
	defer b.Close()
	b.Use(resilience.NewPolicy(resilience.Options{
		Name:     "ghost",
		Attempts: 1,
		Classify: ClassifyRPC,
		Breaker:  &resilience.BreakerConfig{Threshold: 3, OpenFor: time.Minute},
	}))

	for i := 0; i < 3; i++ {
		if err := b.Call(context.Background(), "Echo", echoReq{}, nil); !errors.Is(err, ErrNoEndpoints) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	err := b.Call(context.Background(), "Echo", echoReq{}, nil)
	if !resilience.IsShed(err) {
		t.Fatalf("breaker did not shed: %v", err)
	}
}

func TestClassifyRPC(t *testing.T) {
	cases := []struct {
		err  error
		want resilience.Class
	}{
		{ErrConnClosed, resilience.Transient},
		{ErrNoEndpoints, resilience.Transient},
		{ErrCanceled, resilience.Ambiguous},
		{&RemoteError{Method: "X", Message: "boom"}, resilience.Terminal},
		{errors.New("mystery"), resilience.Ambiguous},
	}
	for _, c := range cases {
		if got := ClassifyRPC(c.err); got != c.want {
			t.Fatalf("ClassifyRPC(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
