// Package nfs models the dynamically provisioned shared NFS volumes FfDL
// mounts into both the helper pod and the learner pods of a job. The
// paper uses the shared volume as (1) the secure channel through which
// the controller observes learner exit statuses and output (§3.8), and
// (2) notes in its lessons learned (§4) that per-job NFS provisioning was
// "slow and often failed under high load" — which this package reproduces
// through a provisioner with load-dependent latency and failure.
package nfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/ffdl/ffdl/internal/sim"
)

// Errors.
var (
	// ErrNotFound reports a read of a missing file.
	ErrNotFound = errors.New("nfs: file not found")
	// ErrProvisionFailed reports a volume provisioning failure (the §4
	// high-load failure mode).
	ErrProvisionFailed = errors.New("nfs: volume provisioning failed")
	// ErrReleased reports use of a released volume.
	ErrReleased = errors.New("nfs: volume released")
)

// Volume is a shared in-memory filesystem mounted by all pods of one DL
// job.
type Volume struct {
	name string

	mu       sync.Mutex
	files    map[string][]byte
	released bool
	watchers []chan string
}

// Name returns the volume's identifier.
func (v *Volume) Name() string { return v.name }

// WriteFile atomically replaces a file's contents. It is how learners
// expose exit codes and status to the controller.
func (v *Volume) WriteFile(path string, data []byte) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.released {
		return ErrReleased
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	v.files[path] = cp
	for _, ch := range v.watchers {
		select {
		case ch <- path:
		default:
		}
	}
	return nil
}

// AppendFile appends to a file, creating it if needed; used for learner
// stdout/stderr logs that the log-collector tails.
func (v *Volume) AppendFile(path string, data []byte) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.released {
		return ErrReleased
	}
	v.files[path] = append(v.files[path], data...)
	for _, ch := range v.watchers {
		select {
		case ch <- path:
		default:
		}
	}
	return nil
}

// ReadFile returns a copy of a file's contents.
func (v *Volume) ReadFile(path string) ([]byte, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.released {
		return nil, ErrReleased
	}
	data, ok := v.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Exists reports whether a file exists.
func (v *Volume) Exists(path string) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	_, ok := v.files[path]
	return ok && !v.released
}

// List returns all paths under a prefix, sorted.
func (v *Volume) List(prefix string) []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	var out []string
	for p := range v.files {
		if strings.HasPrefix(p, prefix) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Watch returns a channel that receives the path of every subsequent
// write; the controller uses it to react promptly to learner exits.
func (v *Volume) Watch() <-chan string {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan string, 64)
	v.watchers = append(v.watchers, ch)
	return ch
}

// Provisioner creates and releases per-job volumes with load-dependent
// latency and failure probability.
type Provisioner struct {
	clock sim.Clock
	rng   *sim.RNG

	mu      sync.Mutex
	volumes map[string]*Volume
	nextID  int

	// BaseLatency is the unloaded provisioning time; each concurrently
	// provisioning request adds LoadPenalty. FailureThreshold is the
	// concurrent-provision count beyond which each extra request adds
	// FailureSlope probability of failure.
	BaseLatency      time.Duration
	LoadPenalty      time.Duration
	FailureThreshold int
	FailureSlope     float64

	inflight int
	failures int64
	creates  int64
}

// NewProvisioner returns a Provisioner with the defaults observed in the
// paper's deployment: seconds-scale provisioning that degrades and starts
// failing under concurrent load.
func NewProvisioner(clock sim.Clock, rng *sim.RNG) *Provisioner {
	return &Provisioner{
		clock:            clock,
		rng:              rng,
		volumes:          make(map[string]*Volume),
		BaseLatency:      2 * time.Second,
		LoadPenalty:      500 * time.Millisecond,
		FailureThreshold: 20,
		FailureSlope:     0.02,
	}
}

// Provision creates a volume for a job, subject to the load model.
func (p *Provisioner) Provision(jobID string) (*Volume, error) {
	p.mu.Lock()
	p.inflight++
	inflight := p.inflight
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.inflight--
		p.mu.Unlock()
	}()

	latency := p.BaseLatency + time.Duration(inflight-1)*p.LoadPenalty
	p.clock.Sleep(latency)

	if over := inflight - p.FailureThreshold; over > 0 {
		pFail := float64(over) * p.FailureSlope
		if pFail > 0.9 {
			pFail = 0.9
		}
		failed := func() bool {
			p.mu.Lock()
			defer p.mu.Unlock()
			return p.rng.Bernoulli(pFail)
		}()
		if failed {
			p.mu.Lock()
			p.failures++
			p.mu.Unlock()
			return nil, fmt.Errorf("%w: %d concurrent provisions", ErrProvisionFailed, inflight)
		}
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	p.nextID++
	p.creates++
	v := &Volume{
		name:  fmt.Sprintf("pvc-%s-%04d", jobID, p.nextID),
		files: make(map[string][]byte),
	}
	p.volumes[v.name] = v
	return v, nil
}

// Release frees a volume; subsequent operations on it fail.
func (p *Provisioner) Release(v *Volume) {
	if v == nil {
		return
	}
	v.mu.Lock()
	v.released = true
	for _, ch := range v.watchers {
		close(ch)
	}
	v.watchers = nil
	v.mu.Unlock()
	p.mu.Lock()
	delete(p.volumes, v.name)
	p.mu.Unlock()
}

// Stats reports provisioning outcomes.
func (p *Provisioner) Stats() (creates, failures int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.creates, p.failures
}

// Active returns the number of live volumes.
func (p *Provisioner) Active() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.volumes)
}
