package core

import "sync"

// StatusEvent is one job status transition published on the platform's
// status bus. Seq is the 1-based index of the transition in the job's
// MongoDB history, so subscribers can detect and refill gaps from the
// durable record — the bus is a latency optimization, MongoDB remains
// the source of truth (§3.2).
type StatusEvent struct {
	JobID  string
	Seq    int
	Status JobStatus
	Entry  StatusEntry
}

// statusBus fans job status transitions out to in-process subscribers:
// the LCM recovery loop (wakes on PENDING jobs instead of polling
// MongoDB) and the API replicas' WatchStatus streams. Delivery is
// best-effort with bounded buffers — a slow subscriber loses events and
// recovers from MongoDB via Seq gaps or a resync tick.
type statusBus struct {
	mu    sync.Mutex
	subs  map[int]*busSub
	nextS int
}

type busSub struct {
	jobID string // "" subscribes to all jobs
	ch    chan StatusEvent
}

func newStatusBus() *statusBus {
	return &statusBus{subs: make(map[int]*busSub)}
}

// Subscribe registers for transitions of one job (or all jobs when
// jobID is ""). Cancel closes the channel.
func (b *statusBus) Subscribe(jobID string, buf int) (<-chan StatusEvent, func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.nextS++
	id := b.nextS
	s := &busSub{jobID: jobID, ch: make(chan StatusEvent, buf)}
	b.subs[id] = s
	return s.ch, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if _, ok := b.subs[id]; ok {
			delete(b.subs, id)
			close(s.ch)
		}
	}
}

// Publish delivers ev to matching subscribers without blocking.
func (b *statusBus) Publish(ev StatusEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, s := range b.subs {
		if s.jobID != "" && s.jobID != ev.JobID {
			continue
		}
		select {
		case s.ch <- ev:
		default: // slow subscriber: it refills from MongoDB
		}
	}
}
