package kube

import (
	"fmt"
	"testing"
	"time"

	"github.com/ffdl/ffdl/internal/sched"
	"github.com/ffdl/ffdl/internal/sim"
)

func testCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.SchedulerInterval == 0 {
		cfg.SchedulerInterval = time.Millisecond
	}
	if cfg.ResyncInterval == 0 {
		cfg.ResyncInterval = 2 * time.Millisecond
	}
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = 5 * time.Millisecond
	}
	if cfg.NodeGracePeriod == 0 {
		cfg.NodeGracePeriod = 30 * time.Millisecond
	}
	c := NewCluster(cfg)
	t.Cleanup(c.Stop)
	return c
}

func gpuRes(gpus int) sched.Resources {
	return sched.Resources{MilliCPU: int64(4000 * gpus), MemoryMB: int64(24000 * gpus), GPUs: gpus}
}

func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// completeAfter returns a runtime that succeeds after d.
func completeAfter(d time.Duration) Runtime {
	return func(ctx *PodContext) int {
		select {
		case <-ctx.Clock.After(d):
			return 0
		case <-ctx.Stop:
			return 137
		}
	}
}

// blockUntilKilled models FfDL learner containers, which stay alive
// until the Guardian tears the job down.
func blockUntilKilled(ctx *PodContext) int {
	<-ctx.Stop
	return 137
}

func TestPodScheduledAndRuns(t *testing.T) {
	c := testCluster(t, Config{})
	c.RegisterRuntime("quick", completeAfter(5*time.Millisecond))
	c.AddNode("node0", "K80", gpuRes(4))
	c.Store().PutPod(&Pod{
		Name: "p1",
		Spec: PodSpec{Demand: sched.Resources{MilliCPU: 1000, MemoryMB: 1000, GPUs: 1}, Runtime: "quick"},
	})
	waitFor(t, "pod completion", 3*time.Second, func() bool {
		p, ok := c.Store().GetPod("p1")
		return ok && p.Status.Phase == PodSucceeded
	})
	p, _ := c.Store().GetPod("p1")
	if p.Status.Node != "node0" {
		t.Fatalf("node = %q", p.Status.Node)
	}
	if p.Status.ExitCode != 0 {
		t.Fatalf("exit = %d", p.Status.ExitCode)
	}
	if p.Status.StartedAt.Before(p.Status.ScheduledAt) {
		t.Fatal("timestamps out of order")
	}
}

func TestPodFailsWithNonZeroExit(t *testing.T) {
	c := testCluster(t, Config{})
	c.RegisterRuntime("crash", func(ctx *PodContext) int { return 3 })
	c.AddNode("node0", "K80", gpuRes(4))
	c.Store().PutPod(&Pod{Name: "p1", Spec: PodSpec{Demand: gpuRes(1), Runtime: "crash"}})
	waitFor(t, "pod failure", 3*time.Second, func() bool {
		p, ok := c.Store().GetPod("p1")
		return ok && p.Status.Phase == PodFailed && p.Status.ExitCode == 3
	})
}

func TestUnschedulablePodEmitsFailedScheduling(t *testing.T) {
	c := testCluster(t, Config{})
	c.AddNode("node0", "K80", gpuRes(2))
	c.Store().PutPod(&Pod{
		Name: "hungry",
		Spec: PodSpec{Demand: sched.Resources{GPUs: 4}, Type: "learner"},
	})
	waitFor(t, "FailedScheduling event", 3*time.Second, func() bool {
		return len(c.Store().Events("FailedScheduling")) > 0
	})
	evs := c.Store().Events("FailedScheduling")
	if evs[0].PodType != "learner" {
		t.Fatalf("event pod type = %q", evs[0].PodType)
	}
	p, _ := c.Store().GetPod("hungry")
	if p.Status.Node != "" {
		t.Fatal("infeasible pod was bound")
	}
}

func TestSchedulerHonorsGPUType(t *testing.T) {
	c := testCluster(t, Config{})
	c.RegisterRuntime("block", blockUntilKilled)
	c.AddNode("k80-node", "K80", gpuRes(4))
	c.AddNode("v100-node", "V100", gpuRes(4))
	c.Store().PutPod(&Pod{
		Name: "v100-pod",
		Spec: PodSpec{Demand: gpuRes(1), GPUType: "V100", Runtime: "block"},
	})
	waitFor(t, "binding", 3*time.Second, func() bool {
		p, _ := c.Store().GetPod("v100-pod")
		return p != nil && p.Status.Node != ""
	})
	p, _ := c.Store().GetPod("v100-pod")
	if p.Status.Node != "v100-node" {
		t.Fatalf("bound to %q", p.Status.Node)
	}
}

// TestSchedulerWakesOnPodAddWithoutTick proves the scheduler is
// event-driven: with the interval ticker effectively disabled (1 hour),
// a freshly created pod must still be bound and run promptly, woken by
// the store watch alone.
func TestSchedulerWakesOnPodAddWithoutTick(t *testing.T) {
	c := testCluster(t, Config{
		SchedulerInterval: time.Hour,
		ResyncInterval:    time.Hour,
	})
	c.RegisterRuntime("quick", completeAfter(time.Millisecond))
	c.AddNode("node0", "K80", gpuRes(4))
	start := time.Now()
	c.Store().PutPod(&Pod{Name: "p1", Spec: PodSpec{Demand: gpuRes(1), Runtime: "quick"}})
	waitFor(t, "event-driven bind+run", 3*time.Second, func() bool {
		p, ok := c.Store().GetPod("p1")
		return ok && p.Status.Phase == PodSucceeded
	})
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("pod took %v; scheduler waited for a tick", elapsed)
	}
}

// TestSchedulerWakesOnFreedCapacity: a pod waiting for space must be
// bound as soon as the blocking pod terminates — driven by the
// termination watch event, not a scheduler tick.
func TestSchedulerWakesOnFreedCapacity(t *testing.T) {
	c := testCluster(t, Config{
		SchedulerInterval: time.Hour,
		ResyncInterval:    time.Hour,
	})
	c.RegisterRuntime("block", blockUntilKilled)
	c.RegisterRuntime("quick", completeAfter(time.Millisecond))
	c.AddNode("node0", "K80", gpuRes(1))
	c.Store().PutPod(&Pod{Name: "hog", Spec: PodSpec{Demand: gpuRes(1), Runtime: "block"}})
	waitFor(t, "hog running", 3*time.Second, func() bool {
		p, ok := c.Store().GetPod("hog")
		return ok && p.Status.Phase == PodRunning
	})
	c.Store().PutPod(&Pod{Name: "waiter", Spec: PodSpec{Demand: gpuRes(1), Runtime: "quick"}})
	waitFor(t, "FailedScheduling for waiter", 3*time.Second, func() bool {
		return len(c.Store().Events("FailedScheduling")) > 0
	})
	c.KillPod("hog", "test")
	waitFor(t, "waiter runs after capacity freed", 3*time.Second, func() bool {
		p, ok := c.Store().GetPod("waiter")
		return ok && p.Status.Phase == PodSucceeded
	})
}

func TestStatefulSetCreatesAndRestartsPods(t *testing.T) {
	c := testCluster(t, Config{})
	c.RegisterRuntime("block", blockUntilKilled)
	c.AddNode("node0", "K80", gpuRes(8))
	c.Store().Put(KindStatefulSet, "learner-j1", &StatefulSet{
		Name: "learner-j1", Replicas: 3,
		Template: PodSpec{Demand: gpuRes(1), Runtime: "block", Type: "learner"},
	})
	running := func() int {
		n := 0
		for _, p := range c.Store().ListPods("learner-j1-") {
			if p.Status.Phase == PodRunning {
				n++
			}
		}
		return n
	}
	waitFor(t, "3 learners running", 3*time.Second, func() bool { return running() == 3 })

	// Kill one learner: the set must replace it.
	if !c.KillPod("learner-j1-1", "test") {
		t.Fatal("KillPod failed")
	}
	waitFor(t, "learner restart", 3*time.Second, func() bool {
		p, ok := c.Store().GetPod("learner-j1-1")
		return ok && p.Status.Phase == PodRunning && p.Status.Restarts >= 1
	})
	if got := running(); got != 3 {
		t.Fatalf("running = %d, want 3", got)
	}
}

func TestStatefulSetScaleDownAndCascade(t *testing.T) {
	c := testCluster(t, Config{})
	c.RegisterRuntime("block", blockUntilKilled)
	c.AddNode("node0", "K80", gpuRes(8))
	c.Store().Put(KindStatefulSet, "ss", &StatefulSet{
		Name: "ss", Replicas: 3,
		Template: PodSpec{Demand: gpuRes(1), Runtime: "block"},
	})
	waitFor(t, "3 pods", 3*time.Second, func() bool { return len(c.Store().ListPods("ss-")) == 3 })
	// Scale to 1.
	c.Store().Put(KindStatefulSet, "ss", &StatefulSet{
		Name: "ss", Replicas: 1,
		Template: PodSpec{Demand: gpuRes(1), Runtime: "block"},
	})
	waitFor(t, "scale down", 3*time.Second, func() bool { return len(c.Store().ListPods("ss-")) == 1 })
	// Delete the set: cascade removes the pod.
	c.Store().Delete(KindStatefulSet, "ss")
	waitFor(t, "cascade delete", 3*time.Second, func() bool { return len(c.Store().ListPods("ss-")) == 0 })
}

func TestJobRestartsUntilBackoffLimit(t *testing.T) {
	c := testCluster(t, Config{})
	c.RegisterRuntime("alwaysfail", func(ctx *PodContext) int { return 1 })
	c.AddNode("node0", "K80", gpuRes(8))
	c.Store().Put(KindJob, "guardian-j1", &Job{
		Name: "guardian-j1", BackoffLimit: 2,
		Template: PodSpec{Demand: sched.Resources{MilliCPU: 100, MemoryMB: 100}, Runtime: "alwaysfail", Type: "guardian"},
	})
	waitFor(t, "job failure", 3*time.Second, func() bool {
		obj, ok := c.Store().Get(KindJob, "guardian-j1")
		return ok && obj.(*Job).Failed
	})
	obj, _ := c.Store().Get(KindJob, "guardian-j1")
	if got := obj.(*Job).Attempts; got != 2 {
		t.Fatalf("attempts = %d, want 2", got)
	}
}

func TestJobSucceeds(t *testing.T) {
	c := testCluster(t, Config{})
	fails := 0
	c.RegisterRuntime("flaky", func(ctx *PodContext) int {
		if fails < 1 {
			fails++
			return 1
		}
		return 0
	})
	c.AddNode("node0", "K80", gpuRes(8))
	c.Store().Put(KindJob, "g", &Job{
		Name: "g", BackoffLimit: 3,
		Template: PodSpec{Demand: sched.Resources{MilliCPU: 100}, Runtime: "flaky"},
	})
	waitFor(t, "job success after retry", 3*time.Second, func() bool {
		obj, ok := c.Store().Get(KindJob, "g")
		return ok && obj.(*Job).Succeeded
	})
}

func TestNodeCrashEvictsAndReschedules(t *testing.T) {
	c := testCluster(t, Config{})
	c.RegisterRuntime("block", blockUntilKilled)
	c.AddNode("node0", "K80", gpuRes(4))
	c.AddNode("node1", "K80", gpuRes(4))
	c.Store().Put(KindDeployment, "helper", &Deployment{
		Name: "helper", Replicas: 1,
		Template: PodSpec{Demand: sched.Resources{MilliCPU: 1000, MemoryMB: 1000}, Runtime: "block", Type: "lhelper"},
	})
	waitFor(t, "helper running", 3*time.Second, func() bool {
		p, ok := c.Store().GetPod("helper-0")
		return ok && p.Status.Phase == PodRunning
	})
	p, _ := c.Store().GetPod("helper-0")
	victim := p.Status.Node

	c.CrashNode(victim)
	waitFor(t, "node NotReady", 3*time.Second, func() bool {
		n, _ := c.Store().GetNode(victim)
		return n != nil && !n.Ready
	})
	// Eviction + deployment controller must produce a running replacement
	// on the surviving node.
	waitFor(t, "helper rescheduled", 5*time.Second, func() bool {
		p, ok := c.Store().GetPod("helper-0")
		return ok && p.Status.Phase == PodRunning && p.Status.Node != victim
	})
	nodeFail, total := c.DeletionStats()
	if nodeFail == 0 || total < nodeFail {
		t.Fatalf("deletion stats = %d/%d", nodeFail, total)
	}
	if len(c.Store().Events("NodeControllerEviction")) == 0 {
		t.Fatal("no eviction events recorded")
	}
}

func TestCordonedNodeRejectsPods(t *testing.T) {
	c := testCluster(t, Config{})
	c.RegisterRuntime("block", blockUntilKilled)
	c.AddNode("node0", "K80", gpuRes(4))
	c.CordonNode("node0")
	c.Store().PutPod(&Pod{Name: "p", Spec: PodSpec{Demand: gpuRes(1), Runtime: "block", Type: "learner"}})
	waitFor(t, "FailedScheduling", 3*time.Second, func() bool {
		return len(c.Store().Events("FailedScheduling")) > 0
	})
	p, _ := c.Store().GetPod("p")
	if p.Status.Node != "" {
		t.Fatal("pod bound to cordoned node")
	}
}

// TestPodAtATimeDeadlock reproduces §3.5: two 2-learner × 2-GPU jobs on
// a 2-node × 2-GPU cluster. Pod-at-a-time spread scheduling binds pods
// in nondeterministic order, so across seeds it must sometimes bind one
// learner of each job — deadlocking both — and every outcome must bind
// exactly two pods (never overcommit).
func TestPodAtATimeDeadlock(t *testing.T) {
	deadlocks := 0
	for seed := int64(1); seed <= 8; seed++ {
		c := testCluster(t, Config{PodPolicy: sched.Spread{}, RNG: sim.NewRNG(seed)})
		c.RegisterRuntime("block", blockUntilKilled)
		c.AddNode("node0", "K80", gpuRes(2))
		c.AddNode("node1", "K80", gpuRes(2))
		for j := 0; j < 2; j++ {
			for l := 0; l < 2; l++ {
				c.Store().PutPod(&Pod{
					Name: fmt.Sprintf("job%d-l%d", j, l),
					Spec: PodSpec{Demand: sched.Resources{MilliCPU: 1000, MemoryMB: 1000, GPUs: 2},
						JobID: fmt.Sprintf("job%d", j), GangSize: 2, Runtime: "block", Type: "learner"},
				})
			}
		}
		time.Sleep(60 * time.Millisecond)
		bound := map[string]int{}
		total := 0
		for _, p := range c.Store().ListPods("") {
			if p.Status.Node != "" {
				bound[p.Spec.JobID]++
				total++
			}
		}
		if total != 2 {
			t.Fatalf("seed %d: %d pods bound, want 2 (cluster has 4 GPUs)", seed, total)
		}
		if bound["job0"] == 1 && bound["job1"] == 1 {
			deadlocks++
		}
		c.Stop()
	}
	// P(deadlock) = 2/3 per seed; all-8-misses has probability (1/3)^8.
	if deadlocks == 0 {
		t.Fatal("pod-at-a-time scheduling never produced a partial placement across 8 seeds")
	}
	t.Logf("deadlocked in %d/8 runs (paper observes deadlock ~60%% of runs)", deadlocks)
}

// TestGangSchedulingAvoidsDeadlock runs the same workload with the BSA
// gang scheduler: one job must be fully bound, the other fully queued.
func TestGangSchedulingAvoidsDeadlock(t *testing.T) {
	c := testCluster(t, Config{GangPolicy: sched.NewBSA(sim.NewRNG(3))})
	c.RegisterRuntime("block", blockUntilKilled)
	c.AddNode("node0", "K80", gpuRes(2))
	c.AddNode("node1", "K80", gpuRes(2))
	for j := 0; j < 2; j++ {
		for l := 0; l < 2; l++ {
			c.Store().PutPod(&Pod{
				Name: fmt.Sprintf("job%d-l%d", j, l),
				Spec: PodSpec{Demand: sched.Resources{MilliCPU: 1000, MemoryMB: 1000, GPUs: 2},
					JobID: fmt.Sprintf("job%d", j), GangSize: 2, Runtime: "block", Type: "learner"},
			})
		}
	}
	time.Sleep(100 * time.Millisecond)
	bound := map[string]int{}
	for _, p := range c.Store().ListPods("") {
		if p.Status.Node != "" {
			bound[p.Spec.JobID]++
		}
	}
	full, queued := 0, 0
	for j := 0; j < 2; j++ {
		switch bound[fmt.Sprintf("job%d", j)] {
		case 2:
			full++
		case 0:
			queued++
		default:
			t.Fatalf("gang scheduler produced partial placement: %v", bound)
		}
	}
	if full != 1 || queued != 1 {
		t.Fatalf("full=%d queued=%d, want 1/1", full, queued)
	}
}

func TestGangWaitsForAllMembers(t *testing.T) {
	c := testCluster(t, Config{GangPolicy: sched.NewBSA(sim.NewRNG(3))})
	c.RegisterRuntime("block", blockUntilKilled)
	c.AddNode("node0", "K80", gpuRes(4))
	// Create only 1 of 2 gang members: nothing must bind yet.
	c.Store().PutPod(&Pod{
		Name: "j-l0",
		Spec: PodSpec{Demand: gpuRes(1), JobID: "j", GangSize: 2, Runtime: "block"},
	})
	time.Sleep(50 * time.Millisecond)
	p, _ := c.Store().GetPod("j-l0")
	if p.Status.Node != "" {
		t.Fatal("incomplete gang member was bound")
	}
	c.Store().PutPod(&Pod{
		Name: "j-l1",
		Spec: PodSpec{Demand: gpuRes(1), JobID: "j", GangSize: 2, Runtime: "block"},
	})
	waitFor(t, "gang bound", 3*time.Second, func() bool {
		a, _ := c.Store().GetPod("j-l0")
		b, _ := c.Store().GetPod("j-l1")
		return a != nil && b != nil && a.Status.Node != "" && b.Status.Node != ""
	})
}

func TestGPUUtilizationAccounting(t *testing.T) {
	c := testCluster(t, Config{})
	c.RegisterRuntime("block", blockUntilKilled)
	c.AddNode("node0", "K80", gpuRes(4))
	alloc, cap_ := c.GPUUtilization()
	if alloc != 0 || cap_ != 4 {
		t.Fatalf("util = %d/%d", alloc, cap_)
	}
	c.Store().PutPod(&Pod{Name: "p", Spec: PodSpec{Demand: gpuRes(3), Runtime: "block"}})
	waitFor(t, "allocation", 3*time.Second, func() bool {
		alloc, _ := c.GPUUtilization()
		return alloc == 3
	})
}

func TestStoreWatchDeliversTypedEvents(t *testing.T) {
	s := NewStore()
	w := s.Watch(KindPod)
	defer w.Cancel()
	ch := w.Events()
	s.PutPod(&Pod{Name: "x"})
	ev := <-ch
	if ev.Type != WatchAdded || ev.Name != "x" {
		t.Fatalf("event = %+v", ev)
	}
	s.UpdatePod("x", func(p *Pod) { p.Status.Phase = PodRunning })
	ev = <-ch
	if ev.Type != WatchModified {
		t.Fatalf("event = %+v", ev)
	}
	if ev.Object.(*Pod).Status.Phase != PodRunning {
		t.Fatal("watch object is stale")
	}
	s.Delete(KindPod, "x")
	ev = <-ch
	if ev.Type != WatchDeleted {
		t.Fatalf("event = %+v", ev)
	}
}

func TestStoreCopiesAtBoundaries(t *testing.T) {
	s := NewStore()
	p := &Pod{Name: "x", Labels: map[string]string{"a": "1"}}
	s.PutPod(p)
	p.Labels["a"] = "mutated"
	got, _ := s.GetPod("x")
	if got.Labels["a"] != "1" {
		t.Fatal("store shares memory with caller")
	}
	got.Labels["a"] = "mutated2"
	got2, _ := s.GetPod("x")
	if got2.Labels["a"] != "1" {
		t.Fatal("store shares memory with reader")
	}
}
