package etcd

import (
	"bytes"
	"testing"
	"time"
)

// commandEqual compares commands treating nil and empty byte slices /
// batches as equal (the binary codec canonicalizes empties to nil; gob
// does the same on its own).
func commandEqual(a, b *command) bool {
	if a.Op != b.Op || a.Key != b.Key || a.Lease != b.Lease ||
		a.TTL != b.TTL || a.Prefix != b.Prefix || a.CmpKey != b.CmpKey ||
		a.CmpRev != b.CmpRev || a.ReqID != b.ReqID || a.RequestBy != b.RequestBy {
		return false
	}
	if !bytes.Equal(a.Value, b.Value) {
		return false
	}
	if len(a.Batch) != len(b.Batch) {
		return false
	}
	for i := range a.Batch {
		if !commandEqual(&a.Batch[i], &b.Batch[i]) {
			return false
		}
	}
	return true
}

func codecCases() []command {
	return []command{
		{Op: opPut, Key: "jobs/x/status", Value: []byte("PROCESSING"), ReqID: 7},
		{Op: opPut, Key: "k", Value: nil, Lease: 42, ReqID: 1<<64 - 1},
		{Op: opDelete, Key: "jobs/", Prefix: true, ReqID: 3},
		{Op: opGrantLease, TTL: 30 * time.Second, ReqID: 4},
		{Op: opRevokeLease, Lease: -9, ReqID: 5},
		{Op: opKeepAlive, Lease: 12, ReqID: 6},
		{Op: opTxnPut, Key: "a", Value: []byte{0, 1, 2}, CmpKey: "a", CmpRev: 99, ReqID: 8, RequestBy: 2},
		{Op: opExpireLease, Lease: 1, ReqID: 9},
		{Op: opBatch, Batch: []command{
			{Op: opPut, Key: "b/1", Value: []byte("v1"), ReqID: 10},
			{Op: opDelete, Key: "b/2", ReqID: 11},
			{Op: opGrantLease, TTL: time.Minute, ReqID: 12},
		}},
	}
}

// TestCommandCodecRoundtrip pins decode(encode(x)) == x for every op
// shape on both codecs (the gob arm exercises the auto-detecting
// fallback in decodeCommand).
func TestCommandCodecRoundtrip(t *testing.T) {
	for _, gobCodec := range []bool{false, true} {
		var scratch command
		for _, want := range codecCases() {
			data, err := encodeEntry(&want, gobCodec)
			if err != nil {
				t.Fatalf("encode (gob=%v) %+v: %v", gobCodec, want, err)
			}
			if err := decodeCommand(data, &scratch); err != nil {
				t.Fatalf("decode (gob=%v) %+v: %v", gobCodec, want, err)
			}
			if !commandEqual(&want, &scratch) {
				t.Fatalf("roundtrip (gob=%v): got %+v, want %+v", gobCodec, scratch, want)
			}
		}
	}
}

// TestCommandCodecTruncatedErrors pins that every proper prefix of an
// encoded command fails with an error instead of panicking or decoding
// to a valid command silently missing fields.
func TestCommandCodecTruncatedErrors(t *testing.T) {
	for _, want := range codecCases() {
		data := encodeCommand(nil, &want)
		var scratch command
		for cut := 0; cut < len(data); cut++ {
			if err := decodeCommand(data[:cut], &scratch); err == nil {
				t.Fatalf("decode of %d/%d-byte prefix of %+v succeeded", cut, len(data), want)
			}
		}
		// Trailing garbage must be rejected too: an entry is exactly one
		// command.
		if err := decodeCommand(append(data[:len(data):len(data)], 0xAB), &scratch); err == nil {
			t.Fatalf("decode with trailing byte succeeded for %+v", want)
		}
	}
}

// TestCommandCodecBatchScratchReuse pins the zero-alloc decode
// property the applier relies on: decoding batches into the same
// scratch command reuses the Batch backing array.
func TestCommandCodecBatchScratchReuse(t *testing.T) {
	env := command{Op: opBatch, Batch: []command{
		{Op: opPut, Key: "a", Value: []byte("1"), ReqID: 1},
		{Op: opPut, Key: "b", Value: []byte("2"), ReqID: 2},
	}}
	data := encodeCommand(nil, &env)
	single := command{Op: opPut, Key: "s", Value: []byte("x"), ReqID: 3}
	singleData := encodeCommand(nil, &single)

	var scratch command
	if err := decodeCommand(data, &scratch); err != nil {
		t.Fatal(err)
	}
	first := &scratch.Batch[0]
	// Interleave a single-command decode; the batch capacity must
	// survive it.
	if err := decodeCommand(singleData, &scratch); err != nil {
		t.Fatal(err)
	}
	if err := decodeCommand(data, &scratch); err != nil {
		t.Fatal(err)
	}
	if &scratch.Batch[0] != first {
		t.Fatal("batch decode did not reuse the scratch backing array")
	}
}

// FuzzCommandCodecRoundtrip fuzzes three properties at once:
//
//  1. decode(encode(x)) == x for a command built from the fuzz inputs
//     (including a batch envelope when batchN > 0);
//  2. decoding any proper prefix of the encoding errors — truncated
//     entries never decode silently;
//  3. decoding arbitrary bytes (the raw value payload) never panics.
func FuzzCommandCodecRoundtrip(f *testing.F) {
	f.Add(uint8(opPut), "jobs/x/status", []byte("PROCESSING"), int64(0), int64(0), false, "", uint64(0), uint64(7), 0, uint8(0), uint(0))
	f.Add(uint8(opTxnPut), "a", []byte{1, 2}, int64(3), int64(4), true, "cmp", uint64(5), uint64(6), 1, uint8(3), uint(2))
	f.Add(uint8(opBatch), "", []byte(nil), int64(0), int64(0), false, "", uint64(0), uint64(0), 0, uint8(5), uint(9))
	f.Fuzz(func(t *testing.T, op uint8, key string, value []byte, lease, ttl int64,
		prefix bool, cmpKey string, cmpRev, reqID uint64, requestBy int, batchN uint8, cut uint) {
		want := command{
			Op: cmdOp(op), Key: key, Value: value, Lease: lease,
			TTL: time.Duration(ttl), Prefix: prefix, CmpKey: cmpKey,
			CmpRev: cmpRev, ReqID: reqID, RequestBy: requestBy,
		}
		if want.Op == opBatch {
			// Envelopes hold non-batch sub-commands (nesting is rejected
			// by decode); synthesize a few from the same inputs.
			n := int(batchN%8) + 1
			sub := want
			sub.Op = opPut
			for i := 0; i < n; i++ {
				sub.ReqID = reqID + uint64(i)
				want.Batch = append(want.Batch, sub)
			}
		}
		data := encodeCommand(nil, &want)
		var got command
		if err := decodeCommand(data, &got); err != nil {
			t.Fatalf("decode(encode(x)): %v", err)
		}
		if !commandEqual(&want, &got) {
			t.Fatalf("roundtrip mismatch: got %+v, want %+v", got, want)
		}
		// Truncation at a fuzz-chosen point must error, never panic.
		if int(cut) < len(data) {
			if err := decodeCommand(data[:cut], &got); err == nil {
				t.Fatalf("decode of truncated entry (%d/%d bytes) succeeded", cut, len(data))
			}
		}
		// Arbitrary bytes must never panic (error or not is fine — the
		// value payload may happen to be a valid encoding or valid gob).
		_ = decodeCommand(value, &got) //nolint:errcheck
	})
}

// BenchmarkCommandEncode compares per-entry encode cost: hand-rolled
// binary vs the seed's gob, for a representative single Put and for a
// 64-command batch envelope.
func BenchmarkCommandEncode(b *testing.B) {
	single := command{Op: opPut, Key: "jobs/tp-000/status", Value: []byte("PROCESSING"), ReqID: 12345}
	env := command{Op: opBatch, Batch: make([]command, 64)}
	for i := range env.Batch {
		env.Batch[i] = single
		env.Batch[i].ReqID = uint64(i + 1)
	}
	for _, bc := range []struct {
		name string
		gob  bool
		cmd  *command
	}{
		{"Binary/Single", false, &single},
		{"Gob/Single", true, &single},
		{"Binary/Batch64", false, &env},
		{"Gob/Batch64", true, &env},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := encodeEntry(bc.cmd, bc.gob); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCommandDecode compares per-entry decode cost into a reused
// scratch command (the applier's shape).
func BenchmarkCommandDecode(b *testing.B) {
	single := command{Op: opPut, Key: "jobs/tp-000/status", Value: []byte("PROCESSING"), ReqID: 12345}
	env := command{Op: opBatch, Batch: make([]command, 64)}
	for i := range env.Batch {
		env.Batch[i] = single
		env.Batch[i].ReqID = uint64(i + 1)
	}
	for _, bc := range []struct {
		name string
		gob  bool
		cmd  *command
	}{
		{"Binary/Single", false, &single},
		{"Gob/Single", true, &single},
		{"Binary/Batch64", false, &env},
		{"Gob/Batch64", true, &env},
	} {
		data, err := encodeEntry(bc.cmd, bc.gob)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(bc.name, func(b *testing.B) {
			var scratch command
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := decodeCommand(data, &scratch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
