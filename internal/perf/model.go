// Package perf models DL training performance: per-GPU throughput for
// the paper's benchmark models (VGG-16, ResNet-50, InceptionV3) across
// GPU generations (K80, P100, V100), CPU-thread input-pipeline scaling,
// multi-GPU/multi-learner scaling, and the platform overhead components
// (container, network virtualization, object-store driver) that Tables 1
// and 2 quantify.
//
// We have no physical GPUs, so absolute throughputs are calibrated to the
// paper's published measurements (Tables 4 and 6) and the NVIDIA
// reference benchmarks the paper cites; everything built on top —
// overhead percentages, CPU saturation points, contention-driven
// degradation — comes from the model's structure, not per-row constants.
package perf

import (
	"fmt"
	"math"
)

// GPUType enumerates the accelerator generations in the paper's cluster.
type GPUType string

// GPU types.
const (
	K80  GPUType = "K80"
	P100 GPUType = "P100"
	V100 GPUType = "V100"
)

// Framework enumerates DL frameworks used in the evaluation.
type Framework string

// Frameworks.
const (
	Caffe      Framework = "Caffe"
	TensorFlow Framework = "TensorFlow"
)

// Model enumerates benchmark networks.
type Model string

// Benchmark models.
const (
	VGG16       Model = "VGG-16"
	ResNet50    Model = "Resnet-50"
	InceptionV3 Model = "InceptionV3"
)

// peakThroughput is the single-GPU images/sec at input-pipeline
// saturation, calibrated to Table 4 (VGG-16/Caffe: P100 ≈ 66, V100 ≈
// 107.5 at batch 75) and Table 6 (TF V100 batch 128: InceptionV3 ≈ 247
// at 100% util, ResNet-50 ≈ 370, VGG-16 ≈ 219).
func peakThroughput(m Model, fw Framework, g GPUType) float64 {
	// V100 reference values.
	var v100 float64
	switch fw {
	case Caffe:
		switch m {
		case VGG16:
			v100 = 107.5
		case ResNet50:
			v100 = 190
		case InceptionV3:
			v100 = 140
		}
	case TensorFlow:
		switch m {
		case VGG16:
			v100 = 219
		case ResNet50:
			v100 = 353
		case InceptionV3:
			v100 = 229
		}
	}
	// Generation ratios: P100 ≈ 0.61×V100 for Caffe/VGG (66/107.5);
	// K80 ≈ 0.33×P100.
	switch g {
	case V100:
		return v100
	case P100:
		return v100 * 0.614
	case K80:
		return v100 * 0.614 * 0.33
	default:
		return 0
	}
}

// cpuSaturation returns the CPU-thread count at which the input pipeline
// saturates the GPU, and the throughput fraction achieved below it.
// Table 4 shows Caffe saturating at 4-8 threads; Table 6 shows
// TensorFlow still gaining up to 28 threads.
func cpuEfficiency(fw Framework, threads int) float64 {
	if threads <= 0 {
		return 0
	}
	t := float64(threads)
	switch fw {
	case Caffe:
		// Near-flat beyond 2 threads: 2 threads already ≈ 99.7% (Table 4:
		// 65.96 vs 66.14).
		return t / (t + 0.01)
	case TensorFlow:
		// Slow saturation: 16 threads ≈ 97%, 28 ≈ 99% of asymptote.
		return t / (t + 0.45)
	default:
		return 1
	}
}

// Config describes one training configuration.
type Config struct {
	Model      Model
	Framework  Framework
	GPUType    GPUType
	GPUsPerL   int
	Learners   int
	CPUThreads int
	BatchSize  int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.GPUsPerL <= 0 || c.Learners <= 0 {
		return fmt.Errorf("perf: config needs >=1 learner and GPU (have %dL x %dG)", c.Learners, c.GPUsPerL)
	}
	if c.CPUThreads < 0 {
		return fmt.Errorf("perf: negative CPU threads")
	}
	return nil
}

func (c Config) String() string {
	return fmt.Sprintf("%dL x %dGPU/L", c.Learners, c.GPUsPerL)
}

// multiGPUEfficiency models intra-learner data-parallel scaling over
// PCIe: VGG-class models (large parameter tensors) lose more per extra
// GPU than compute-dense models.
func multiGPUEfficiency(m Model, gpus int) float64 {
	if gpus <= 1 {
		return 1
	}
	var perGPULoss float64
	switch m {
	case VGG16:
		perGPULoss = 0.07
	case InceptionV3:
		perGPULoss = 0.035
	case ResNet50:
		perGPULoss = 0.045
	default:
		perGPULoss = 0.05
	}
	return math.Pow(1-perGPULoss, float64(gpus-1))
}

// multiLearnerEfficiency models inter-learner synchronization over the
// datacenter network (1GbE in §5.1): each doubling of learners costs a
// few percent.
func multiLearnerEfficiency(m Model, learners int) float64 {
	if learners <= 1 {
		return 1
	}
	var loss float64
	switch m {
	case VGG16:
		loss = 0.06
	case InceptionV3:
		loss = 0.04
	case ResNet50:
		loss = 0.05
	default:
		loss = 0.05
	}
	return math.Pow(1-loss, math.Log2(float64(learners)))
}

// BareMetalThroughput returns aggregate images/sec for a configuration
// running directly on dedicated servers (the paper's baseline).
func BareMetalThroughput(c Config) float64 {
	if err := c.Validate(); err != nil {
		return 0
	}
	threads := c.CPUThreads
	if threads == 0 {
		threads = 8 // paper baseline provisioning
	}
	single := peakThroughput(c.Model, c.Framework, c.GPUType) * cpuEfficiency(c.Framework, threads)
	perLearner := single * float64(c.GPUsPerL) * multiGPUEfficiency(c.Model, c.GPUsPerL)
	return perLearner * float64(c.Learners) * multiLearnerEfficiency(c.Model, c.Learners)
}

// GPUUtilization estimates the GPU utilization fraction for a config:
// the ratio of delivered to peak throughput, which is what FfDL's
// sizing study reports in Table 6.
func GPUUtilization(c Config) float64 {
	util := cpuEfficiency(c.Framework, c.CPUThreads) *
		multiGPUEfficiency(c.Model, c.GPUsPerL) *
		multiLearnerEfficiency(c.Model, c.Learners)
	if util > 1 {
		util = 1
	}
	return util
}
