// Package learner implements the simulated DL training process that runs
// inside FfDL's learner containers. The platform treats user code as a
// black box (§2: "it is not feasible to analyze the user code"), so the
// simulation only needs to produce the externally observable behaviour a
// real Caffe/TensorFlow learner produces:
//
//   - it streams its dataset from the mounted object store (load phase),
//   - it rendezvouses with its peer learners before making progress —
//     which is why partially scheduled jobs deadlock (§3.5),
//   - it emits stdout logs and periodic checkpoints to the object store,
//   - it writes its status and exit code to files on the shared NFS
//     volume, where the helper pod's controller container observes them
//     (§3.8),
//   - on restart it resumes from the latest checkpoint found in its
//     bucket (§3.8 "Checkpointing").
//
// Training time is modeled with internal/perf throughputs, compressed by
// a configurable factor so tests replay hours of training in
// milliseconds.
package learner

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/ffdl/ffdl/internal/nfs"
	"github.com/ffdl/ffdl/internal/objstore"
	"github.com/ffdl/ffdl/internal/perf"
	"github.com/ffdl/ffdl/internal/sim"
)

// File layout on the shared NFS volume. The controller reads these.
const (
	// StatusFile is "learners/<ordinal>/status": one of the LearnerStatus
	// strings.
	statusPattern = "learners/%d/status"
	// ExitFile is "learners/<ordinal>/exit": the process exit code,
	// written exactly once at termination.
	exitPattern = "learners/%d/exit"
	// ReadyFile marks rendezvous arrival.
	readyPattern = "learners/%d/ready"
	// LogFile accumulates stdout.
	logPattern = "learners/%d/stdout.log"
	// progressPattern records the iteration counter for monitoring.
	progressPattern = "learners/%d/progress"
)

// Status strings written to the volume.
const (
	StatusDownloading = "DOWNLOADING"
	StatusWaiting     = "WAITING_FOR_PEERS"
	StatusProcessing  = "PROCESSING"
	StatusStoring     = "STORING"
	StatusCompleted   = "COMPLETED"
	StatusFailed      = "FAILED"
)

// Spec configures one learner process.
type Spec struct {
	// JobID and Ordinal identify this learner within its job.
	JobID   string
	Ordinal int
	// Learners is the gang size (for rendezvous).
	Learners int

	// Training configuration.
	Model      perf.Model
	Framework  perf.Framework
	GPUType    perf.GPUType
	GPUs       int
	CPUThreads int
	BatchSize  int
	// Iterations is the total training iterations for the job.
	Iterations int
	// CheckpointEvery is the checkpoint interval in iterations; 0
	// disables checkpointing.
	CheckpointEvery int

	// Data plane.
	Volume     *nfs.Volume
	Mount      *objstore.Mount
	DataBucket string
	DataPrefix string
	// ResultStore receives checkpoints and the final model.
	ResultStore  *objstore.Service
	ResultBucket string

	// Clock and compression: one modeled second costs
	// TimeCompression real seconds of Clock.Sleep. Zero compresses
	// fully (no sleeps) — still yielding between iterations.
	Clock           sim.Clock
	TimeCompression float64

	// RendezvousTimeout bounds how long the learner waits for peers
	// before giving up (the "temporarily deadlocked" state, §3.5; real
	// frameworks eventually fail). Zero waits forever.
	RendezvousTimeout time.Duration
}

// Process is a running learner.
type Process struct {
	spec Spec
}

// New returns a learner process for the spec.
func New(spec Spec) *Process {
	if spec.Clock == nil {
		spec.Clock = sim.NewRealClock()
	}
	if spec.BatchSize <= 0 {
		spec.BatchSize = 64
	}
	return &Process{spec: spec}
}

// path helpers
func (p *Process) statusPath() string   { return fmt.Sprintf(statusPattern, p.spec.Ordinal) }
func (p *Process) exitPath() string     { return fmt.Sprintf(exitPattern, p.spec.Ordinal) }
func (p *Process) readyPath() string    { return fmt.Sprintf(readyPattern, p.spec.Ordinal) }
func (p *Process) logPath() string      { return fmt.Sprintf(logPattern, p.spec.Ordinal) }
func (p *Process) progressPath() string { return fmt.Sprintf(progressPattern, p.spec.Ordinal) }

func (p *Process) setStatus(s string) {
	p.spec.Volume.WriteFile(p.statusPath(), []byte(s)) //nolint:errcheck // volume release races job teardown
}

func (p *Process) logf(format string, args ...any) {
	line := fmt.Sprintf("[%s learner-%d] ", p.spec.JobID, p.spec.Ordinal) +
		fmt.Sprintf(format, args...) + "\n"
	p.spec.Volume.AppendFile(p.logPath(), []byte(line)) //nolint:errcheck
}

// ckptKey formats a checkpoint object key; iteration is zero-padded so
// lexicographic object listing yields chronological order and "latest =
// last" (how FfDL finds the newest checkpoint, §3.8).
func (p *Process) ckptKey(iter int) string {
	return fmt.Sprintf("%s/checkpoints/ckpt-%09d", p.spec.JobID, iter)
}

// latestCheckpoint returns the iteration of the newest checkpoint, or 0.
func (p *Process) latestCheckpoint() int {
	if p.spec.ResultStore == nil {
		return 0
	}
	objs, err := p.spec.ResultStore.List(p.spec.ResultBucket, p.spec.JobID+"/checkpoints/")
	if err != nil || len(objs) == 0 {
		return 0
	}
	last := objs[len(objs)-1].Key
	idx := strings.LastIndex(last, "ckpt-")
	if idx < 0 {
		return 0
	}
	n, err := strconv.Atoi(last[idx+len("ckpt-"):])
	if err != nil {
		return 0
	}
	return n
}

// modeledSleep sleeps compressed modeled time, abortable by stop.
func (p *Process) modeledSleep(modeled time.Duration, stop <-chan struct{}) bool {
	real_ := time.Duration(float64(modeled) * p.spec.TimeCompression)
	if real_ <= 0 {
		return true
	}
	select {
	case <-stop:
		return false
	case <-p.spec.Clock.After(real_):
		return true
	}
}

// Run executes the learner until completion or kill; it returns the
// process exit code. The exit code is also written to the volume's exit
// file (unless the process was killed mid-flight, exactly like a real
// SIGKILL'd container, which is how the controller distinguishes crash
// from completion).
func (p *Process) Run(stop <-chan struct{}) int {
	code, kill := p.run(stop)
	if !kill {
		// Graceful path: record exit for the controller.
		p.spec.Volume.WriteFile(p.exitPath(), []byte(strconv.Itoa(code))) //nolint:errcheck
		if code == 0 {
			p.setStatus(StatusCompleted)
		} else {
			p.setStatus(StatusFailed)
		}
		// FfDL learner containers stay alive after finishing until the
		// platform tears the job down; completion is signaled through
		// the exit file, not the pod phase.
		<-stop
	}
	return code
}

// run returns (exitCode, killedMidFlight).
func (p *Process) run(stop <-chan struct{}) (int, bool) {
	select {
	case <-stop:
		return 137, true
	default:
	}
	// Phase 1: stream the dataset through the mounted object store.
	p.setStatus(StatusDownloading)
	p.logf("downloading dataset %s/%s", p.spec.DataBucket, p.spec.DataPrefix)
	if p.spec.Mount != nil {
		objs, err := p.spec.ResultStore.List(p.spec.DataBucket, p.spec.DataPrefix)
		if err != nil {
			p.logf("dataset list failed: %v", err)
			return 1, false
		}
		for _, o := range objs {
			if _, err := p.spec.Mount.ReadAll(o.Key); err != nil {
				p.logf("dataset read %s failed: %v", o.Key, err)
				return 1, false
			}
		}
	}

	// Phase 2: rendezvous with peers (synchronous data parallelism).
	if p.spec.Learners > 1 {
		p.setStatus(StatusWaiting)
		p.spec.Volume.WriteFile(p.readyPath(), []byte("1")) //nolint:errcheck
		if !p.waitForPeers(stop) {
			select {
			case <-stop:
				return 137, true
			default:
			}
			p.logf("rendezvous timeout: peers never arrived")
			return 2, false
		}
	}

	// Phase 3: train, resuming from the latest checkpoint.
	start := p.latestCheckpoint()
	if start > 0 {
		p.logf("resuming from checkpoint at iteration %d", start)
	}
	p.setStatus(StatusProcessing)
	cfg := perf.Config{
		Model: p.spec.Model, Framework: p.spec.Framework, GPUType: p.spec.GPUType,
		GPUsPerL: max(1, p.spec.GPUs), Learners: max(1, p.spec.Learners),
		CPUThreads: p.spec.CPUThreads, BatchSize: p.spec.BatchSize,
	}
	thpt := perf.FfDLThroughput(cfg) / float64(max(1, p.spec.Learners))
	if thpt <= 0 {
		p.logf("invalid training configuration: %+v", cfg)
		return 1, false
	}
	secPerIter := float64(p.spec.BatchSize) / thpt
	logEvery := max(1, p.spec.Iterations/10)
	for iter := start + 1; iter <= p.spec.Iterations; iter++ {
		if !p.modeledSleep(time.Duration(secPerIter*float64(time.Second)), stop) {
			return 137, true
		}
		select {
		case <-stop:
			return 137, true
		default:
		}
		if iter%logEvery == 0 || iter == p.spec.Iterations {
			p.logf("iteration %d/%d loss=%.4f images/sec=%.1f",
				iter, p.spec.Iterations, 4.0/float64(1+iter), thpt)
			p.spec.Volume.WriteFile(p.progressPath(), []byte(strconv.Itoa(iter))) //nolint:errcheck
		}
		if p.spec.CheckpointEvery > 0 && iter%p.spec.CheckpointEvery == 0 && p.spec.Ordinal == 0 {
			if err := p.checkpoint(iter); err != nil {
				p.logf("checkpoint at %d failed: %v", iter, err)
			} else {
				p.logf("checkpoint written at iteration %d", iter)
			}
		}
	}

	// Phase 4: store the trained model (learner 0 writes it).
	p.setStatus(StatusStoring)
	if p.spec.Ordinal == 0 && p.spec.ResultStore != nil {
		key := fmt.Sprintf("%s/model/final.bin", p.spec.JobID)
		if err := p.spec.ResultStore.Put(p.spec.ResultBucket, key, p.modelBytes(p.spec.Iterations)); err != nil {
			p.logf("storing final model failed: %v", err)
			return 1, false
		}
		p.logf("final model stored at %s", key)
	}
	return 0, false
}

// waitForPeers blocks until every gang member has written its ready
// file. Returns false on timeout or kill.
func (p *Process) waitForPeers(stop <-chan struct{}) bool {
	var deadline time.Time
	if p.spec.RendezvousTimeout > 0 {
		deadline = p.spec.Clock.Now().Add(p.spec.RendezvousTimeout)
	}
	for {
		ready := 0
		for i := 0; i < p.spec.Learners; i++ {
			if p.spec.Volume.Exists(fmt.Sprintf(readyPattern, i)) {
				ready++
			}
		}
		if ready == p.spec.Learners {
			return true
		}
		if !deadline.IsZero() && p.spec.Clock.Now().After(deadline) {
			return false
		}
		select {
		case <-stop:
			return false
		case <-p.spec.Clock.After(5 * time.Millisecond):
		}
	}
}

// checkpoint persists training state to the object store.
func (p *Process) checkpoint(iter int) error {
	if p.spec.ResultStore == nil {
		return errors.New("learner: no result store configured")
	}
	return p.spec.ResultStore.Put(p.spec.ResultBucket, p.ckptKey(iter), p.modelBytes(iter))
}

// modelBytes fabricates a deterministic "model" blob whose content
// encodes the iteration (so resume tests can verify which checkpoint was
// loaded).
func (p *Process) modelBytes(iter int) []byte {
	return []byte(fmt.Sprintf("model(%s@%d)", p.spec.JobID, iter))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
