package nfs

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/ffdl/ffdl/internal/sim"
)

func fastProvisioner() *Provisioner {
	p := NewProvisioner(sim.NewRealClock(), sim.NewRNG(1))
	p.BaseLatency = 0
	p.LoadPenalty = 0
	return p
}

func TestVolumeReadWrite(t *testing.T) {
	p := fastProvisioner()
	v, err := p.Provision("job1")
	if err != nil {
		t.Fatal(err)
	}
	if err := v.WriteFile("learner0/exit", []byte("0")); err != nil {
		t.Fatal(err)
	}
	data, err := v.ReadFile("learner0/exit")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "0" {
		t.Fatalf("data = %q", data)
	}
	if _, err := v.ReadFile("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestVolumeAppendAndList(t *testing.T) {
	p := fastProvisioner()
	v, err := p.Provision("job1")
	if err != nil {
		t.Fatal(err)
	}
	if err := v.AppendFile("logs/learner0.log", []byte("line1\n")); err != nil {
		t.Fatal(err)
	}
	if err := v.AppendFile("logs/learner0.log", []byte("line2\n")); err != nil {
		t.Fatal(err)
	}
	if err := v.WriteFile("status/learner0", []byte("RUNNING")); err != nil {
		t.Fatal(err)
	}
	data, _ := v.ReadFile("logs/learner0.log")
	if string(data) != "line1\nline2\n" {
		t.Fatalf("log = %q", data)
	}
	logs := v.List("logs/")
	if len(logs) != 1 || logs[0] != "logs/learner0.log" {
		t.Fatalf("list = %v", logs)
	}
	if len(v.List("")) != 2 {
		t.Fatalf("full list = %v", v.List(""))
	}
}

func TestVolumeWatchDeliversWrites(t *testing.T) {
	p := fastProvisioner()
	v, err := p.Provision("job1")
	if err != nil {
		t.Fatal(err)
	}
	ch := v.Watch()
	if err := v.WriteFile("learner0/exit", []byte("137")); err != nil {
		t.Fatal(err)
	}
	select {
	case path := <-ch:
		if path != "learner0/exit" {
			t.Fatalf("path = %q", path)
		}
	case <-time.After(time.Second):
		t.Fatal("watch event not delivered")
	}
}

func TestReleaseInvalidatesVolume(t *testing.T) {
	p := fastProvisioner()
	v, err := p.Provision("job1")
	if err != nil {
		t.Fatal(err)
	}
	ch := v.Watch()
	p.Release(v)
	if err := v.WriteFile("x", nil); !errors.Is(err, ErrReleased) {
		t.Fatalf("write err = %v", err)
	}
	if _, err := v.ReadFile("x"); !errors.Is(err, ErrReleased) {
		t.Fatalf("read err = %v", err)
	}
	if _, open := <-ch; open {
		t.Fatal("watch channel not closed on release")
	}
	if p.Active() != 0 {
		t.Fatalf("active = %d", p.Active())
	}
}

func TestProvisionLatencyGrowsWithLoad(t *testing.T) {
	clock := sim.NewFakeClock(time.Unix(0, 0))
	clock.StartAutoAdvance(200 * time.Microsecond)
	defer clock.StopAutoAdvance()
	p := NewProvisioner(clock, sim.NewRNG(1))
	p.BaseLatency = time.Second
	p.LoadPenalty = time.Second

	start := clock.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var maxElapsed time.Duration
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Provision("j"); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			if e := clock.Since(start); e > maxElapsed {
				maxElapsed = e
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	// With 5 concurrent provisions the slowest should include load
	// penalty (>= 2s), versus 1s unloaded.
	if maxElapsed < 2*time.Second {
		t.Fatalf("max provisioning latency = %v, want >= 2s under load", maxElapsed)
	}
}

func TestProvisionFailsUnderHeavyLoad(t *testing.T) {
	p := fastProvisioner()
	p.FailureThreshold = 0
	p.FailureSlope = 1.0 // guaranteed failure when over threshold

	// Hold many provisions in flight by blocking on a slow clock.
	var wg sync.WaitGroup
	var mu sync.Mutex
	failures := 0
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Provision("j"); err != nil {
				mu.Lock()
				failures++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if failures == 0 {
		t.Fatal("no provisioning failures despite saturation settings")
	}
	_, recorded := p.Stats()
	if int(recorded) != failures {
		t.Fatalf("stats failures = %d, observed %d", recorded, failures)
	}
}

func TestConcurrentVolumeAccess(t *testing.T) {
	p := fastProvisioner()
	v, err := p.Provision("job1")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			path := string(rune('a' + w))
			for i := 0; i < 100; i++ {
				if err := v.AppendFile(path, []byte{byte(i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < 8; w++ {
		data, err := v.ReadFile(string(rune('a' + w)))
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != 100 {
			t.Fatalf("file %c has %d bytes", 'a'+w, len(data))
		}
	}
}
