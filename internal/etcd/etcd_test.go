package etcd

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func newTestCluster(t *testing.T, opts Options) *Cluster {
	t.Helper()
	if opts.TickInterval == 0 {
		opts.TickInterval = 2 * time.Millisecond
	}
	c, err := NewCluster(opts)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(c.Stop)
	return c
}

func TestElectsSingleLeader(t *testing.T) {
	c := newTestCluster(t, Options{Replicas: 3})
	leaders := 0
	for _, n := range c.nodes {
		if n.isLeader() {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("leaders = %d, want 1", leaders)
	}
}

func TestPutGet(t *testing.T) {
	c := newTestCluster(t, Options{})
	rev, err := c.Put("jobs/j1/status", []byte("PENDING"), 0)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if rev == 0 {
		t.Fatal("Put returned zero revision")
	}
	kv, ok, err := c.Get("jobs/j1/status")
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if string(kv.Value) != "PENDING" {
		t.Fatalf("value = %q", kv.Value)
	}
	if kv.CreateRevision != rev || kv.ModRevision != rev {
		t.Fatalf("revisions = %d/%d, want %d", kv.CreateRevision, kv.ModRevision, rev)
	}
}

func TestRevisionsMonotonic(t *testing.T) {
	c := newTestCluster(t, Options{})
	var last uint64
	for i := 0; i < 20; i++ {
		rev, err := c.Put(fmt.Sprintf("k%d", i%3), []byte("v"), 0)
		if err != nil {
			t.Fatal(err)
		}
		if rev <= last {
			t.Fatalf("revision %d not greater than %d", rev, last)
		}
		last = rev
	}
}

func TestDeleteAndPrefix(t *testing.T) {
	c := newTestCluster(t, Options{})
	for i := 0; i < 5; i++ {
		if _, err := c.Put(fmt.Sprintf("jobs/j1/learner%d", i), []byte("x"), 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Put("jobs/j2/learner0", []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	ok, err := c.Delete("jobs/j1/learner0")
	if err != nil || !ok {
		t.Fatalf("Delete: ok=%v err=%v", ok, err)
	}
	ok, err = c.DeletePrefix("jobs/j1/")
	if err != nil || !ok {
		t.Fatalf("DeletePrefix: ok=%v err=%v", ok, err)
	}
	kvs, err := c.List("jobs/")
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 1 || kvs[0].Key != "jobs/j2/learner0" {
		t.Fatalf("List after prefix delete = %v", kvs)
	}
}

func TestCompareAndSwap(t *testing.T) {
	c := newTestCluster(t, Options{})
	// Create-if-absent.
	ok, err := c.CompareAndSwap("lock", 0, []byte("owner1"))
	if err != nil || !ok {
		t.Fatalf("CAS create: ok=%v err=%v", ok, err)
	}
	// Second create-if-absent must fail.
	ok, err = c.CompareAndSwap("lock", 0, []byte("owner2"))
	if err != nil || ok {
		t.Fatalf("CAS duplicate create succeeded")
	}
	kv, _, err := c.Get("lock")
	if err != nil {
		t.Fatal(err)
	}
	if string(kv.Value) != "owner1" {
		t.Fatalf("lock owner = %q, want owner1", kv.Value)
	}
	// Swap at current revision succeeds.
	ok, err = c.CompareAndSwap("lock", kv.ModRevision, []byte("owner2"))
	if err != nil || !ok {
		t.Fatalf("CAS update: ok=%v err=%v", ok, err)
	}
	// Stale revision fails.
	ok, err = c.CompareAndSwap("lock", kv.ModRevision, []byte("owner3"))
	if err != nil || ok {
		t.Fatal("stale CAS succeeded")
	}
}

func TestWatchKey(t *testing.T) {
	c := newTestCluster(t, Options{})
	ws, err := c.Watch("status", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Cancel()
	if _, err := c.Put("status", []byte("RUNNING"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("other", []byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-ws.Events():
		if ev.Type != EventPut || string(ev.KV.Value) != "RUNNING" {
			t.Fatalf("event = %+v", ev)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no watch event")
	}
	select {
	case ev := <-ws.Events():
		t.Fatalf("unexpected event for other key: %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestWatchPrefixStreamsAll(t *testing.T) {
	c := newTestCluster(t, Options{})
	ws, err := c.Watch("jobs/j1/", true, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Cancel()
	for i := 0; i < 3; i++ {
		if _, err := c.Put(fmt.Sprintf("jobs/j1/learner%d", i), []byte("READY"), 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Delete("jobs/j1/learner1"); err != nil {
		t.Fatal(err)
	}
	var puts, dels int
	timeout := time.After(2 * time.Second)
	for puts+dels < 4 {
		select {
		case ev := <-ws.Events():
			switch ev.Type {
			case EventPut:
				puts++
			case EventDelete:
				dels++
			}
		case <-timeout:
			t.Fatalf("got %d puts %d dels, want 3/1", puts, dels)
		}
	}
	if puts != 3 || dels != 1 {
		t.Fatalf("puts=%d dels=%d", puts, dels)
	}
}

// TestWatchFromRevisionReplays proves a watcher can resume from an old
// revision and receive the missed events from the retained history.
func TestWatchFromRevisionReplays(t *testing.T) {
	c := newTestCluster(t, Options{})
	var first uint64
	for i := 0; i < 5; i++ {
		rev, err := c.Put(fmt.Sprintf("jobs/j/l%d", i), []byte("S"), 0)
		if err != nil {
			t.Fatal(err)
		}
		if first == 0 {
			first = rev
		}
	}
	ws, err := c.Watch("jobs/j/", true, first)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Cancel()
	for i := 0; i < 5; i++ {
		select {
		case ev := <-ws.Events():
			want := fmt.Sprintf("jobs/j/l%d", i)
			if ev.Type != EventPut || ev.KV.Key != want {
				t.Fatalf("replayed event %d = %+v, want PUT %s", i, ev, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("missing replayed event %d", i)
		}
	}
}

// TestWatchCompactedHistoryResyncs proves the overflow→resync contract:
// resuming past the retained history window yields an EventResync marker
// followed by the current state, not a silent gap.
func TestWatchCompactedHistoryResyncs(t *testing.T) {
	c := newTestCluster(t, Options{WatchHistory: 8})
	for i := 0; i < 50; i++ {
		if _, err := c.Put(fmt.Sprintf("k%02d", i%5), []byte(fmt.Sprintf("v%d", i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	ws, err := c.Watch("k", true, 1) // revision 1 is long compacted
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Cancel()
	select {
	case ev := <-ws.Events():
		if ev.Type != EventResync {
			t.Fatalf("first event = %v, want RESYNC", ev.Type)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no resync event")
	}
	seen := make(map[string]string)
	for len(seen) < 5 {
		select {
		case ev := <-ws.Events():
			if ev.Type != EventPut {
				t.Fatalf("post-resync event = %+v", ev)
			}
			seen[ev.KV.Key] = string(ev.KV.Value)
		case <-time.After(2 * time.Second):
			t.Fatalf("resync delivered only %d/5 keys", len(seen))
		}
	}
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("k%02d", i)
		if v := seen[k]; v != fmt.Sprintf("v%d", 45+i) {
			t.Fatalf("resync state %s = %q", k, v)
		}
	}
}

// TestWatchResumesAcrossLeaderFailover is the dependability heart of the
// event-driven control plane: a prefix watch keeps delivering every
// event, in revision order without duplicates, while the replica it was
// attached to is isolated and leadership moves.
func TestWatchResumesAcrossLeaderFailover(t *testing.T) {
	c := newTestCluster(t, Options{Replicas: 3})
	ws, err := c.Watch("jobs/", true, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Cancel()

	var wantRevs []uint64
	put := func(i int) {
		rev, err := c.Put(fmt.Sprintf("jobs/j/l%d", i), []byte("S"), 0)
		if err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		wantRevs = append(wantRevs, rev)
	}
	for i := 0; i < 3; i++ {
		put(i)
	}
	// Kill the replica the watch is attached to (the leader at
	// registration time) and keep writing through the new leader.
	old := c.Leader()
	c.Isolate(old, true)
	for i := 3; i < 10; i++ {
		put(i)
	}

	var got []uint64
	timeout := time.After(10 * time.Second)
	for len(got) < len(wantRevs) {
		select {
		case ev, ok := <-ws.Events():
			if !ok {
				t.Fatalf("stream closed after %d/%d events", len(got), len(wantRevs))
			}
			if ev.Type == EventResync {
				t.Fatal("failover forced a resync; history replay expected")
			}
			got = append(got, ev.Revision)
		case <-timeout:
			t.Fatalf("delivered %d/%d events across failover", len(got), len(wantRevs))
		}
	}
	for i, rev := range got {
		if rev != wantRevs[i] {
			t.Fatalf("event %d revision = %d, want %d (got %v want %v)", i, rev, wantRevs[i], got, wantRevs)
		}
	}
	c.Isolate(old, false)
}

func TestLeaseExpiryDeletesKeys(t *testing.T) {
	c := newTestCluster(t, Options{})
	id, err := c.Grant(50 * time.Millisecond)
	if err != nil {
		t.Fatalf("Grant: %v", err)
	}
	if _, err := c.Put("ephemeral", []byte("x"), id); err != nil {
		t.Fatal(err)
	}
	ws, err := c.Watch("ephemeral", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Cancel()
	select {
	case ev := <-ws.Events():
		if ev.Type != EventExpire {
			t.Fatalf("event = %v, want EXPIRE", ev.Type)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("lease never expired")
	}
	if _, ok, _ := c.Get("ephemeral"); ok {
		t.Fatal("key survived lease expiry")
	}
}

func TestLeaseKeepAlivePreventsExpiry(t *testing.T) {
	c := newTestCluster(t, Options{})
	id, err := c.Grant(80 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Put("hb", []byte("alive"), id); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		time.Sleep(40 * time.Millisecond)
		if err := c.KeepAlive(id); err != nil {
			t.Fatalf("KeepAlive: %v", err)
		}
	}
	if _, ok, _ := c.Get("hb"); !ok {
		t.Fatal("key expired despite keepalives")
	}
	if err := c.Revoke(id); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get("hb"); ok {
		t.Fatal("key survived revoke")
	}
}

func TestLeaderFailoverContinuesService(t *testing.T) {
	c := newTestCluster(t, Options{Replicas: 3})
	if _, err := c.Put("before", []byte("1"), 0); err != nil {
		t.Fatal(err)
	}
	old := c.Leader()
	c.Isolate(old, true)
	// A new leader must emerge among the remaining two.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if l := c.Leader(); l >= 0 && l != old {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no new leader after isolating old one")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.Put("after", []byte("2"), 0); err != nil {
		t.Fatalf("Put after failover: %v", err)
	}
	kv, ok, err := c.Get("before")
	if err != nil || !ok || string(kv.Value) != "1" {
		t.Fatalf("pre-failover data lost: %v %v %v", kv, ok, err)
	}
	// Heal: old leader rejoins as follower and catches up.
	c.Isolate(old, false)
	time.Sleep(200 * time.Millisecond)
	if !c.StateEqual(0, 1) || !c.StateEqual(1, 2) {
		t.Fatal("replicas diverged after heal")
	}
}

func TestMinorityPartitionCannotCommit(t *testing.T) {
	c := newTestCluster(t, Options{Replicas: 3, ProposalTimeout: 300 * time.Millisecond})
	leader := c.Leader()
	// Cut the leader from both followers: it must not commit new writes.
	for i := 0; i < 3; i++ {
		if i != leader {
			c.CutLink(leader, i, true)
		}
	}
	time.Sleep(100 * time.Millisecond)
	// Writes go to the majority side's new leader; reads of a fresh key
	// prove the minority didn't serve the write.
	if _, err := c.Put("majority", []byte("yes"), 0); err != nil {
		t.Fatalf("majority write failed: %v", err)
	}
	// The isolated old leader must not have the key.
	if kv, ok := c.states[leader].get("majority"); ok {
		t.Fatalf("minority applied uncommitted write: %+v", kv)
	}
	for i := 0; i < 3; i++ {
		if i != leader {
			c.CutLink(leader, i, false)
		}
	}
}

func TestReplicasConvergeUnderLoad(t *testing.T) {
	c := newTestCluster(t, Options{Replicas: 3})
	for i := 0; i < 200; i++ {
		if _, err := c.Put(fmt.Sprintf("k%03d", i%50), []byte(fmt.Sprintf("v%d", i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	// Allow followers to drain.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if c.StateEqual(0, 1) && c.StateEqual(1, 2) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("replicas did not converge")
}

func TestSnapshotCompactionKeepsState(t *testing.T) {
	c := newTestCluster(t, Options{Replicas: 3, SnapshotThreshold: 64})
	for i := 0; i < 300; i++ {
		if _, err := c.Put(fmt.Sprintf("key%d", i%10), []byte(fmt.Sprintf("v%d", i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	li := c.Leader()
	c.nodes[li].mu.Lock()
	compacted := c.nodes[li].snapIndex > 0
	c.nodes[li].mu.Unlock()
	if !compacted {
		t.Fatal("log never compacted despite small threshold")
	}
	kv, ok, err := c.Get("key9")
	if err != nil || !ok {
		t.Fatalf("Get after compaction: %v %v", ok, err)
	}
	if string(kv.Value) != "v299" {
		t.Fatalf("value = %q, want v299", kv.Value)
	}
}

func TestLaggingFollowerCatchesUpViaSnapshot(t *testing.T) {
	c := newTestCluster(t, Options{Replicas: 3, SnapshotThreshold: 32})
	// Isolate a follower, write enough to force compaction past its log.
	leader := c.Leader()
	follower := (leader + 1) % 3
	c.Isolate(follower, true)
	for i := 0; i < 200; i++ {
		if _, err := c.Put(fmt.Sprintf("k%d", i), []byte("v"), 0); err != nil {
			t.Fatal(err)
		}
	}
	c.Isolate(follower, false)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if kv, ok := c.states[follower].get("k199"); ok && string(kv.Value) == "v" {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("follower did not catch up via snapshot")
}

// TestSnapshotRestorePreservesWatchHistory pins the durable-history half
// of the watch contract at the state-machine level: a replica rebuilt
// from a snapshot adopts the snapshot's compacted event log, so a
// watcher resuming from an old revision gets a replay, not a resync.
// The persistence-off arm restores the old clear-on-restore behaviour
// (the CompactRevisions<0 ablation the watch-churn experiment measures).
func TestSnapshotRestorePreservesWatchHistory(t *testing.T) {
	for _, persist := range []bool{true, false} {
		src := newStoreState(time.Now, 1024, 4096, persist)
		var req uint64
		for i := 0; i < 10; i++ {
			req++
			src.apply(&command{Op: opPut, Key: fmt.Sprintf("jobs/j/l%d", i), Value: []byte("S"), ReqID: req})
		}
		dst := newStoreState(time.Now, 1024, 4096, persist)
		dst.restore(src.snapshot())
		if got := dst.restoreCount(); got != 1 {
			t.Fatalf("restoreCount = %d, want 1", got)
		}
		if dst.revision() != src.revision() {
			t.Fatalf("restored revision = %d, want %d", dst.revision(), src.revision())
		}
		_, backlog, cancel := dst.addWatcherFrom("jobs/j/", true, 1, 64)
		if persist {
			if len(backlog) != 10 {
				t.Fatalf("persisted replay backlog = %d events, want 10", len(backlog))
			}
			for i, ev := range backlog {
				if ev.Type != EventPut || ev.Revision != uint64(i+1) {
					t.Fatalf("backlog[%d] = %+v, want PUT at revision %d", i, ev, i+1)
				}
			}
		} else if len(backlog) == 0 || backlog[0].Type != EventResync {
			t.Fatalf("ablation backlog = %+v, want a leading RESYNC", backlog)
		}
		cancel()
	}
}

// TestCompactRevisionsWindowTrimsHistory: retention is revision-window
// based — events older than the CompactRevisions window are compacted
// even while the WatchHistory entry cap still has room.
func TestCompactRevisionsWindowTrimsHistory(t *testing.T) {
	st := newStoreState(time.Now, 1024, 8, true)
	var req uint64
	for i := 0; i < 20; i++ {
		req++
		st.apply(&command{Op: opPut, Key: "k", Value: []byte{byte(i)}, ReqID: req})
	}
	st.mu.Lock()
	n, floor := st.hist.Len(), st.revIdx[0].rev
	st.mu.Unlock()
	if n != 8 {
		t.Fatalf("retained %d events, want the 8-revision window", n)
	}
	if floor != 13 {
		t.Fatalf("retained floor revision = %d, want 13 (rev 20 - window 8 + 1)", floor)
	}
}

// TestWatchReplaysAgainstSnapshotRestoredLeader is the acceptance pin
// for durable watch history: a replica that rejoined via InstallSnapshot
// is forced to become leader (the replica watches attach to), and a
// watcher resuming from the beginning of history replays every event in
// revision order with no EventResync.
func TestWatchReplaysAgainstSnapshotRestoredLeader(t *testing.T) {
	c := newTestCluster(t, Options{Replicas: 3, SnapshotThreshold: 32})
	leader := c.Leader()
	follower := (leader + 1) % 3
	c.Isolate(follower, true)
	var wantRevs []uint64
	for i := 0; i < 120; i++ {
		rev, err := c.Put(fmt.Sprintf("jobs/j/l%d", i%10), []byte("S"), 0)
		if err != nil {
			t.Fatal(err)
		}
		wantRevs = append(wantRevs, rev)
	}
	c.Isolate(follower, false)
	// The healed follower is too far behind the compacted log, so it
	// must catch up via a snapshot — which now carries the event log.
	deadline := time.Now().Add(10 * time.Second)
	for c.states[follower].restoreCount() < 1 ||
		c.states[follower].revision() < wantRevs[len(wantRevs)-1] {
		if time.Now().After(deadline) {
			t.Fatalf("follower never restored from snapshot (restores=%d rev=%d)",
				c.states[follower].restoreCount(), c.states[follower].revision())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c.SnapshotRestores() < 1 {
		t.Fatal("SnapshotRestores did not count the install")
	}
	// Bounce leadership until the restored replica leads. The write made
	// while the old leader is cut keeps its log stale so it cannot
	// immediately win the term back.
	deadline = time.Now().Add(15 * time.Second)
	for c.Leader() != follower {
		if time.Now().After(deadline) {
			t.Fatal("restored replica never became leader")
		}
		cur := c.Leader()
		if cur < 0 || cur == follower {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		c.Isolate(cur, true)
		if _, err := c.Put("bounce", []byte("x"), 0); err != nil {
			t.Fatalf("bounce write: %v", err)
		}
		c.Isolate(cur, false)
	}
	ws, err := c.Watch("jobs/j/", true, wantRevs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Cancel()
	var got []uint64
	timeout := time.After(10 * time.Second)
	for len(got) < len(wantRevs) {
		select {
		case ev, ok := <-ws.Events():
			if !ok {
				t.Fatalf("stream closed after %d/%d events", len(got), len(wantRevs))
			}
			if ev.Type == EventResync {
				t.Fatal("resume against restored replica forced a resync; persisted-log replay expected")
			}
			got = append(got, ev.Revision)
		case <-timeout:
			t.Fatalf("replayed %d/%d events", len(got), len(wantRevs))
		}
	}
	for i, rev := range got {
		if rev != wantRevs[i] {
			t.Fatalf("event %d revision = %d, want %d", i, rev, wantRevs[i])
		}
	}
	if ws.Resyncs() != 0 {
		t.Fatalf("stream counted %d resyncs, want 0", ws.Resyncs())
	}
}

func TestSingleNodeCluster(t *testing.T) {
	c := newTestCluster(t, Options{Replicas: 1})
	if _, err := c.Put("solo", []byte("1"), 0); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get("solo"); !ok {
		t.Fatal("single-node put lost")
	}
}

func TestStoppedClusterErrors(t *testing.T) {
	c := newTestCluster(t, Options{Replicas: 1})
	c.Stop()
	if _, err := c.Put("x", nil, 0); err == nil {
		t.Fatal("Put on stopped cluster succeeded")
	}
}

// Property: the store behaves as a map — the last written value per key
// wins, for arbitrary operation interleavings.
func TestStoreLinearizesToMapProperty(t *testing.T) {
	c := newTestCluster(t, Options{Replicas: 3})
	f := func(ops []struct {
		Key byte
		Val uint16
		Del bool
	}) bool {
		if len(ops) > 30 {
			ops = ops[:30]
		}
		model := make(map[string]string)
		prefix := fmt.Sprintf("prop%d/", time.Now().UnixNano())
		for _, op := range ops {
			k := prefix + fmt.Sprintf("k%d", op.Key%4)
			if op.Del {
				if _, err := c.Delete(k); err != nil {
					return false
				}
				delete(model, k)
			} else {
				v := fmt.Sprintf("v%d", op.Val)
				if _, err := c.Put(k, []byte(v), 0); err != nil {
					return false
				}
				model[k] = v
			}
		}
		kvs, err := c.List(prefix)
		if err != nil {
			return false
		}
		if len(kvs) != len(model) {
			return false
		}
		for _, kv := range kvs {
			if model[kv.Key] != string(kv.Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
