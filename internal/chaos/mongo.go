package chaos

import (
	"sync"
	"time"

	"github.com/ffdl/ffdl/internal/mongo"
	"github.com/ffdl/ffdl/internal/sim"
)

// MongoInjector drives document-store chaos against a mongo.DB: primary
// failover windows (erroring ops return mongo.ErrUnavailable until the
// window heals), dropped change-feed batches (writes commit but live
// subscribers see a Seq gap and must refill), and a frozen/laggy
// secondary cycling between stalled and caught-up. It is the mongo
// counterpart of Injector/EtcdInjector: the platform's resilience layer
// (and the core API's degraded mode) are what is under attack.
type MongoInjector struct {
	db    *mongo.DB
	clock sim.Clock

	// FailoverMTBF is the mean time between primary failover windows;
	// zero disables them.
	FailoverMTBF time.Duration
	// FailoverDuration is the mean length of one unavailability window.
	// Defaults to 100ms.
	FailoverDuration time.Duration
	// FeedDropMTBF is the mean time between dropped change-feed batches;
	// zero disables them.
	FeedDropMTBF time.Duration
	// FeedDropBatch is the number of consecutive committed writes whose
	// fan-out each drop suppresses. Defaults to 4.
	FeedDropBatch int
	// FreezeMTBF is the mean time between secondary freeze/thaw cycles;
	// zero disables the secondary entirely (no replica is attached).
	FreezeMTBF time.Duration
	// FreezeDuration is the mean length of one freeze. Defaults to 100ms.
	FreezeDuration time.Duration

	mu        sync.Mutex
	rng       *sim.RNG
	failovers int64
	feedDrops int64
	freezes   int64
	secondary *mongo.Secondary
	stopCh    chan struct{}
	wg        sync.WaitGroup
	stopOnce  sync.Once
	startOnce sync.Once
}

// NewMongoInjector returns an injector bound to a database, pacing its
// fault loops on the given clock (nil = wall clock) and drawing from rng.
func NewMongoInjector(db *mongo.DB, clock sim.Clock, rng *sim.RNG) *MongoInjector {
	if clock == nil {
		clock = sim.NewRealClock()
	}
	return &MongoInjector{
		db:               db,
		clock:            clock,
		rng:              rng,
		FailoverDuration: 100 * time.Millisecond,
		FeedDropBatch:    4,
		FreezeDuration:   100 * time.Millisecond,
		stopCh:           make(chan struct{}),
	}
}

// MongoStats counts injected faults.
type MongoStats struct {
	Failovers int64 `json:"failovers"`
	FeedDrops int64 `json:"feed_drops"`
	Freezes   int64 `json:"freezes"`
}

// Stats reports cumulative injected-fault counts.
func (in *MongoInjector) Stats() MongoStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return MongoStats{Failovers: in.failovers, FeedDrops: in.feedDrops, Freezes: in.freezes}
}

// Secondary returns the injector-managed replica (nil unless FreezeMTBF
// enabled one), for tests that want to compare its catch-up state.
func (in *MongoInjector) Secondary() *mongo.Secondary {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.secondary
}

// Start launches the fault loops.
func (in *MongoInjector) Start() {
	in.startOnce.Do(func() {
		if in.FailoverMTBF > 0 {
			in.wg.Add(1)
			go func() {
				defer in.wg.Done()
				in.failoverLoop()
			}()
		}
		if in.FeedDropMTBF > 0 {
			in.wg.Add(1)
			go func() {
				defer in.wg.Done()
				in.feedDropLoop()
			}()
		}
		if in.FreezeMTBF > 0 {
			in.mu.Lock()
			in.secondary = in.db.StartSecondary()
			in.mu.Unlock()
			in.wg.Add(1)
			go func() {
				defer in.wg.Done()
				in.freezeLoop()
			}()
		}
	})
}

// Stop halts injection, healing any open failover window, thawing the
// secondary and detaching it.
func (in *MongoInjector) Stop() {
	in.stopOnce.Do(func() { close(in.stopCh) })
	in.wg.Wait()
	in.db.SetUnavailable(false)
	in.mu.Lock()
	sec := in.secondary
	in.secondary = nil
	in.mu.Unlock()
	if sec != nil {
		sec.Freeze(false)
		sec.Stop()
	}
}

// draw returns an exponential wait with the given mean, serialized on
// the injector's mutex (the RNG is not concurrency-safe).
func (in *MongoInjector) draw(mean time.Duration) time.Duration {
	in.mu.Lock()
	defer in.mu.Unlock()
	return time.Duration(in.rng.Exp(float64(mean)))
}

// sleep waits d on the injector clock; false means the injector stopped.
func (in *MongoInjector) sleep(d time.Duration) bool {
	select {
	case <-in.stopCh:
		return false
	case <-in.clock.After(d):
		return true
	}
}

// failoverLoop cycles primary unavailability windows.
func (in *MongoInjector) failoverLoop() {
	for {
		if !in.sleep(in.draw(in.FailoverMTBF)) {
			return
		}
		in.db.SetUnavailable(true)
		in.mu.Lock()
		in.failovers++
		in.mu.Unlock()
		healed := in.sleep(in.draw(in.FailoverDuration))
		in.db.SetUnavailable(false)
		if !healed {
			return
		}
	}
}

// feedDropLoop periodically suppresses a batch of change-feed
// deliveries.
func (in *MongoInjector) feedDropLoop() {
	for {
		if !in.sleep(in.draw(in.FeedDropMTBF)) {
			return
		}
		in.db.DropFeedNext(in.FeedDropBatch)
		in.mu.Lock()
		in.feedDrops++
		in.mu.Unlock()
	}
}

// freezeLoop cycles the managed secondary between frozen and caught-up.
func (in *MongoInjector) freezeLoop() {
	in.mu.Lock()
	sec := in.secondary
	in.mu.Unlock()
	for {
		if !in.sleep(in.draw(in.FreezeMTBF)) {
			return
		}
		sec.Freeze(true)
		in.mu.Lock()
		in.freezes++
		in.mu.Unlock()
		thawed := in.sleep(in.draw(in.FreezeDuration))
		sec.Freeze(false)
		if !thawed {
			return
		}
	}
}
