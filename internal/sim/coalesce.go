package sim

// Coalesce non-blockingly drains every value currently buffered in ch,
// invoking fn (if non-nil) per value, and reports whether ch was
// observed closed. Event-driven control loops use it to fold a burst of
// wake-up events into a single level-triggered pass.
func Coalesce[T any](ch <-chan T, fn func(T)) (closed bool) {
	for {
		select {
		case v, ok := <-ch:
			if !ok {
				return true
			}
			if fn != nil {
				fn(v)
			}
		default:
			return false
		}
	}
}
