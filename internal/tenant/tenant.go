// Package tenant implements FfDL's multi-tenancy subsystem (§3.6): a
// tenant registry — per-user tiers and GPU quotas persisted in MongoDB
// and propagated through its change feed — and an event-driven
// dispatcher that turns admission control from a synchronous submit-time
// gate into a queue.
//
// With the subsystem enabled, a submission is never rejected for lack
// of capacity: it is persisted as QUEUED and the dispatcher admits it
// when room exists. The dispatcher pops the FCFS queue (sched.Queue,
// largest-gang-first among same-instant arrivals), asks sched.Admission
// for a decision, and hands admitted jobs to the platform. When the
// head of the queue is an *in-quota* request that cannot be admitted
// because the cluster budget is consumed, the dispatcher preempts: it
// selects victims through Admission.PreemptFor (free-tier jobs first,
// then over-quota jobs newest-first), checkpoints and halts them
// through the platform's existing halt path, and requeues them — their
// original arrival time restores them to the head of the FCFS order —
// to resume from checkpoint once capacity frees.
//
// The dispatcher is a level-triggered watch consumer in the sense of
// docs/watch-protocol.md: it wakes on job status transitions (queued,
// halted, resumed, terminal) from the platform's status bus, on quota
// writes from the tenant registry's change feed, and on cluster
// capacity changes from the kube store watch — and it pairs every wake
// source with a slow resync tick that re-reads queued jobs, quotas and
// victim phases from their durable stores, so a dropped event delays a
// dispatch by at most one resync interval, never loses it.
package tenant

import (
	"fmt"

	"github.com/ffdl/ffdl/internal/sched"
)

// Record is one tenant's entry in the registry: who they are, which
// tier they ride in, and their GPU entitlement. Usage beyond GPUs is
// admitted only opportunistically and is preemptible, as are all
// free-tier jobs.
type Record struct {
	User string
	Tier sched.Tier
	GPUs int
}

// Quota converts the record to the admission controller's vocabulary.
func (r Record) Quota() sched.UserQuota {
	return sched.UserQuota{User: r.User, Tier: r.Tier, GPUs: r.GPUs}
}

// Validate checks the record.
func (r Record) Validate() error {
	if r.User == "" {
		return fmt.Errorf("tenant: record needs a user")
	}
	if r.Tier != sched.TierFree && r.Tier != sched.TierPaid {
		return fmt.Errorf("tenant: unknown tier %d for %s", r.Tier, r.User)
	}
	if r.GPUs < 0 {
		return fmt.Errorf("tenant: negative GPU quota for %s", r.User)
	}
	return nil
}

// TierName renders a tier for APIs and CLIs.
func TierName(t sched.Tier) string {
	switch t {
	case sched.TierFree:
		return "free"
	case sched.TierPaid:
		return "paid"
	default:
		return fmt.Sprintf("tier(%d)", t)
	}
}

// ParseTier parses a tier name ("free" or "paid").
func ParseTier(s string) (sched.Tier, error) {
	switch s {
	case "free":
		return sched.TierFree, nil
	case "paid":
		return sched.TierPaid, nil
	default:
		return 0, fmt.Errorf("tenant: unknown tier %q (want free or paid)", s)
	}
}
