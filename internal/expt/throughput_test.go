package expt

import "testing"

// TestThroughputBatchingOutperformsAblation is the acceptance pin for
// the control-plane throughput work at (reduced) experiment scale:
// group commit actually groups (cmds/entry > 1 under concurrency, == 1
// in the ablation), every submission dispatches, and both the raw etcd
// proposal rate and the end-to-end dispatch rate beat the unbatched
// ablation. The full-size ≥2x criterion at 64 submitters is pinned by
// `make throughput-smoke` / `ffdl-bench -throughput`; the in-test
// threshold is looser so a loaded CI machine cannot flake it.
func TestThroughputBatchingOutperformsAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("boots two full platforms")
	}
	cfg := ThroughputConfig{Submitters: 16, Jobs: 32, EtcdOps: 64, MongoOps: 64, Seed: 7}
	batched, unbatched, err := ThroughputCompare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []ThroughputResult{batched, unbatched} {
		if r.Dispatched != r.Jobs {
			t.Fatalf("batched=%v dispatched %d/%d jobs", r.Batched, r.Dispatched, r.Jobs)
		}
		if r.EtcdProposalsPerSec <= 0 || r.MongoOpsPerSec <= 0 || r.DispatchedPerSec <= 0 {
			t.Fatalf("batched=%v has zero rates: %+v", r.Batched, r)
		}
	}
	if batched.EtcdCmdsPerEntry <= 1.5 {
		t.Fatalf("group commit did not group: %.2f cmds/entry", batched.EtcdCmdsPerEntry)
	}
	// The ablation proposes one entry per command; retries can only push
	// the ratio below 1 (extra entries), never above.
	if unbatched.EtcdCmdsPerEntry > 1.001 {
		t.Fatalf("ablation batched: %.2f cmds/entry", unbatched.EtcdCmdsPerEntry)
	}
	if batched.EtcdProposalsPerSec < 2*unbatched.EtcdProposalsPerSec {
		t.Fatalf("etcd proposals/sec: batched %.0f vs ablation %.0f, want >= 2x",
			batched.EtcdProposalsPerSec, unbatched.EtcdProposalsPerSec)
	}
	if batched.DispatchedPerSec < unbatched.DispatchedPerSec {
		t.Fatalf("dispatch rate: batched %.1f/s vs ablation %.1f/s — batching made the platform slower",
			batched.DispatchedPerSec, unbatched.DispatchedPerSec)
	}
}
