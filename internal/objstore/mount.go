package objstore

import (
	"container/list"
	"fmt"
	"io"
	"sync"
)

// Mount is the s3fs-like driver FfDL uses to expose a bucket as a local
// filesystem to learner containers: "A driver streams files on demand and
// caches them so they can be reused across training epochs and jobs"
// (§3.7). Chunks fetched from the object store are kept in a shared LRU
// cache, so the second epoch of a training run — and other jobs reading
// the same dataset — hit memory instead of the (bandwidth-limited)
// storage backend.
type Mount struct {
	svc    *Service
	bucket string
	cache  *chunkCache
}

// MountStats summarizes driver effectiveness.
type MountStats struct {
	Hits         int64
	Misses       int64
	BytesFetched int64
	BytesServed  int64
}

// HitRate returns the fraction of chunk reads served from cache.
func (s MountStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

const mountChunkSize = 4 << 20 // 4 MiB, typical s3fs block

// NewMount attaches a caching mount over a bucket. capacityBytes bounds
// the shared chunk cache; passing the same *ChunkCache via NewMountWith
// shares the cache across jobs.
func (s *Service) NewMount(bucket string, capacityBytes int64) *Mount {
	return &Mount{svc: s, bucket: bucket, cache: newChunkCache(capacityBytes)}
}

// NewMountWith attaches a mount that shares an existing cache, modeling
// "the same datasets are often used across jobs" (§4).
func (s *Service) NewMountWith(bucket string, cache *ChunkCache) *Mount {
	return &Mount{svc: s, bucket: bucket, cache: cache.inner}
}

// ChunkCache is an exported handle to a shareable LRU chunk cache.
type ChunkCache struct{ inner *chunkCache }

// NewChunkCache returns a standalone cache for sharing across mounts.
func NewChunkCache(capacityBytes int64) *ChunkCache {
	return &ChunkCache{inner: newChunkCache(capacityBytes)}
}

// Open returns a file-like reader over an object through the cache.
func (m *Mount) Open(key string) (*File, error) {
	meta, err := m.svc.Head(m.bucket, key)
	if err != nil {
		return nil, err
	}
	return &File{mount: m, key: key, size: meta.Size}, nil
}

// ReadAll reads a whole object through the cache, as one training epoch
// pass over a dataset file does.
func (m *Mount) ReadAll(key string) ([]byte, error) {
	f, err := m.Open(key)
	if err != nil {
		return nil, err
	}
	return io.ReadAll(f)
}

// Stats returns cache statistics.
func (m *Mount) Stats() MountStats { return m.cache.stats() }

// File is a sequentially readable view of an object.
type File struct {
	mount *Mount
	key   string
	size  int64
	off   int64
}

var _ io.Reader = (*File)(nil)

// Size returns the object size.
func (f *File) Size() int64 { return f.size }

// Read implements io.Reader, fetching 4 MiB chunks through the cache.
func (f *File) Read(p []byte) (int, error) {
	if f.off >= f.size {
		return 0, io.EOF
	}
	chunkIdx := f.off / mountChunkSize
	chunk, err := f.mount.chunkAt(f.key, chunkIdx)
	if err != nil {
		return 0, err
	}
	within := f.off - chunkIdx*mountChunkSize
	n := copy(p, chunk[within:])
	f.off += int64(n)
	f.mount.cache.addServed(int64(n))
	return n, nil
}

// ReadAt implements io.ReaderAt semantics for random access.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if off >= f.size {
		return 0, io.EOF
	}
	total := 0
	for total < len(p) && off < f.size {
		chunkIdx := off / mountChunkSize
		chunk, err := f.mount.chunkAt(f.key, chunkIdx)
		if err != nil {
			return total, err
		}
		within := off - chunkIdx*mountChunkSize
		n := copy(p[total:], chunk[within:])
		total += n
		off += int64(n)
	}
	f.mount.cache.addServed(int64(total))
	if total < len(p) {
		return total, io.EOF
	}
	return total, nil
}

// chunkAt returns chunk idx of an object, from cache or backend.
func (m *Mount) chunkAt(key string, idx int64) ([]byte, error) {
	ck := fmt.Sprintf("%s/%s#%d", m.bucket, key, idx)
	if data, ok := m.cache.get(ck); ok {
		return data, nil
	}
	data, err := m.svc.GetRange(m.bucket, key, idx*mountChunkSize, mountChunkSize)
	if err != nil {
		return nil, err
	}
	m.cache.put(ck, data)
	return data, nil
}

// chunkCache is a byte-bounded LRU of object chunks.
type chunkCache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	ll       *list.List // front = most recent
	items    map[string]*list.Element

	hits, misses, fetched, served int64
}

type cacheEntry struct {
	key  string
	data []byte
}

func newChunkCache(capacity int64) *chunkCache {
	return &chunkCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

func (c *chunkCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).data, true
	}
	c.misses++
	return nil, false
}

func (c *chunkCache) put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fetched += int64(len(data))
	if c.capacity <= 0 {
		return // cache disabled: count traffic only
	}
	if el, ok := c.items[key]; ok {
		c.used += int64(len(data)) - int64(len(el.Value.(*cacheEntry).data))
		el.Value.(*cacheEntry).data = data
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&cacheEntry{key: key, data: data})
		c.items[key] = el
		c.used += int64(len(data))
	}
	for c.used > c.capacity && c.ll.Len() > 0 {
		oldest := c.ll.Back()
		ent := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.items, ent.key)
		c.used -= int64(len(ent.data))
	}
}

func (c *chunkCache) addServed(n int64) {
	c.mu.Lock()
	c.served += n
	c.mu.Unlock()
}

func (c *chunkCache) stats() MountStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return MountStats{Hits: c.hits, Misses: c.misses, BytesFetched: c.fetched, BytesServed: c.served}
}
