package expt

import (
	"testing"
	"time"
)

// TestChaosSoak runs a scaled-down soak — both arms, every injector —
// and requires zero invariant violations. This is the same harness
// `ffdl-bench -chaos-soak` gates CI with, just smaller.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is seconds-long; skipped in -short")
	}
	res, err := ChaosSoak(ChaosSoakConfig{
		Nodes:       3,
		Users:       2,
		JobsPerUser: 2,
		Iterations:  2,
		EtcdCycles:  1,
		Seed:        7,
		Timeout:     240 * time.Second,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("ChaosSoak: %v", err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Completed+res.Failed < res.Jobs {
		t.Errorf("terminal jobs %d+%d < submitted %d", res.Completed, res.Failed, res.Jobs)
	}
	if res.Completed == 0 {
		t.Error("no job completed under chaos")
	}
	if res.DegradedShed == 0 {
		t.Error("forced mongo outage produced no degraded sheds")
	}
	if res.DegradedRead == 0 {
		t.Error("forced mongo outage produced no degraded reads")
	}
	if !res.SLOOK {
		t.Errorf("SLO violated: chaos p99 %.1fms vs calm %.1fms (K=%.0f)",
			res.ChaosP99Ms, res.CalmP99Ms, res.SLOFactor)
	}
	t.Logf("soak: %d jobs (%d completed, %d failed), %d node crashes, %d pod kills, %d etcd outages, mongo %+v, rpc %+v, retries=%d sheds=%d, calm p99 %.1fms chaos p99 %.1fms recovery %.1fms, %.1f virtual min in %.1fs wall",
		res.Jobs, res.Completed, res.Failed, res.NodeCrashes, res.PodKills, res.EtcdOutages,
		res.Mongo, res.RPC, res.Retries, res.Sheds, res.CalmP99Ms, res.ChaosP99Ms,
		res.RecoveryVirtualMs, res.VirtualMinutes, res.WallSeconds)
}
