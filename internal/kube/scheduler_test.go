package kube

import (
	"fmt"
	"testing"
	"time"

	"github.com/ffdl/ffdl/internal/sched"
	"github.com/ffdl/ffdl/internal/sim"
)

// dirtySetCluster builds a cluster whose resync safety nets are
// effectively disabled, so any scheduler work observed is driven purely
// by the dirty-set event path.
func dirtySetCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	cfg.SchedulerInterval = time.Hour
	cfg.ResyncInterval = time.Hour
	if cfg.HeartbeatInterval == 0 {
		cfg.HeartbeatInterval = time.Millisecond
	}
	cfg.NodeGracePeriod = time.Hour
	c := NewCluster(cfg)
	t.Cleanup(c.Stop)
	return c
}

// waitHeartbeats blocks until the scheduler has observed (and filtered)
// at least n more heartbeat events than at the baseline.
func waitHeartbeats(t *testing.T, c *Cluster, base SchedStats, n uint64) {
	t.Helper()
	waitFor(t, fmt.Sprintf("%d filtered heartbeats", n), 5*time.Second, func() bool {
		return c.SchedStats().EventsIgnored >= base.EventsIgnored+n
	})
}

// TestHeartbeatsCauseNoSchedulerWork pins the dirty-set contract: node
// heartbeats are placement-irrelevant, so with no pending pods — and
// with pending pods that cannot fit — an arbitrary number of them must
// trigger zero scheduling passes and zero full-cluster scans.
func TestHeartbeatsCauseNoSchedulerWork(t *testing.T) {
	c := dirtySetCluster(t, Config{})
	for i := 0; i < 4; i++ {
		c.AddNode(fmt.Sprintf("node%d", i), "K80", gpuRes(4))
	}
	waitFor(t, "boot events drained", 3*time.Second, func() bool {
		return c.SchedStats().EventsSeen >= 4
	})

	// Phase 1: no pending pods.
	base := c.SchedStats()
	waitHeartbeats(t, c, base, 50)
	got := c.SchedStats()
	if got.Passes != base.Passes {
		t.Fatalf("heartbeats with no pending pods triggered %d passes", got.Passes-base.Passes)
	}
	if got.FullScans != base.FullScans {
		t.Fatalf("heartbeats triggered %d full-cluster scans", got.FullScans-base.FullScans)
	}
	if got.NodesExamined != base.NodesExamined {
		t.Fatalf("heartbeats examined %d nodes", got.NodesExamined-base.NodesExamined)
	}

	// Phase 2: a pending pod that cannot fit anywhere (demands more
	// GPUs than any machine has). Its arrival costs exactly one pass;
	// heartbeats after that must not retrigger it.
	c.Store().PutPod(&Pod{
		Name: "hungry",
		Spec: PodSpec{Demand: sched.Resources{GPUs: 64}, Type: "learner"},
	})
	waitFor(t, "FailedScheduling for hungry", 3*time.Second, func() bool {
		return len(c.Store().Events("FailedScheduling")) > 0
	})
	base = c.SchedStats()
	waitHeartbeats(t, c, base, 50)
	got = c.SchedStats()
	if got.Passes != base.Passes {
		t.Fatalf("heartbeats retried an unfittable pod %d times", got.Passes-base.Passes)
	}
	if got.FullScans != base.FullScans {
		t.Fatalf("heartbeats triggered %d full scans while a pod waited", got.FullScans-base.FullScans)
	}
	if got.NodesExamined != base.NodesExamined {
		t.Fatalf("heartbeats examined %d nodes while a pod waited", got.NodesExamined-base.NodesExamined)
	}
}

// TestFreedWrongGPUTypeDoesNotWake: capacity freed on a GPU type no
// waiting pod can use must not trigger a pass.
func TestFreedWrongGPUTypeDoesNotWake(t *testing.T) {
	c := dirtySetCluster(t, Config{})
	c.RegisterRuntime("block", blockUntilKilled)
	c.AddNode("k80-node", "K80", gpuRes(2))
	c.Store().PutPod(&Pod{Name: "hog", Spec: PodSpec{Demand: gpuRes(2), Runtime: "block"}})
	waitFor(t, "hog running", 3*time.Second, func() bool {
		p, ok := c.Store().GetPod("hog")
		return ok && p.Status.Phase == PodRunning
	})
	// A V100 pod can never land on this cluster; it waits typed.
	c.Store().PutPod(&Pod{
		Name: "v100-pod",
		Spec: PodSpec{Demand: gpuRes(1), GPUType: "V100", Type: "learner"},
	})
	waitFor(t, "FailedScheduling for v100-pod", 3*time.Second, func() bool {
		return len(c.Store().Events("FailedScheduling")) > 0
	})
	base := c.SchedStats()
	// Free K80 capacity: irrelevant to the V100 waiter.
	c.KillPod("hog", "test")
	waitFor(t, "hog terminated", 3*time.Second, func() bool {
		p, ok := c.Store().GetPod("hog")
		return ok && p.Terminated()
	})
	time.Sleep(20 * time.Millisecond) // allow any (wrong) pass to run
	got := c.SchedStats()
	if got.Passes != base.Passes {
		t.Fatalf("freed K80 capacity woke a V100-only waiter (%d extra passes)", got.Passes-base.Passes)
	}
	if p, _ := c.Store().GetPod("v100-pod"); p.Status.Node != "" {
		t.Fatal("v100 pod bound to a K80 node")
	}
}

// TestFreedCapacityWakesAndPlacesWaitingGang is the regression guard
// for the dirty-set: a whole gang waiting for space must still be woken
// and placed the moment matching capacity frees, with resync disabled.
func TestFreedCapacityWakesAndPlacesWaitingGang(t *testing.T) {
	c := dirtySetCluster(t, Config{GangPolicy: sched.NewBSA(sim.NewRNG(5))})
	c.RegisterRuntime("block", blockUntilKilled)
	c.AddNode("node0", "K80", gpuRes(2))
	c.Store().PutPod(&Pod{Name: "hog", Spec: PodSpec{Demand: gpuRes(2), Runtime: "block"}})
	waitFor(t, "hog running", 3*time.Second, func() bool {
		p, ok := c.Store().GetPod("hog")
		return ok && p.Status.Phase == PodRunning
	})
	for l := 0; l < 2; l++ {
		c.Store().PutPod(&Pod{
			Name: fmt.Sprintf("gang-l%d", l),
			Spec: PodSpec{Demand: gpuRes(1), GPUType: "K80", JobID: "gang",
				GangSize: 2, Runtime: "block", Type: "learner"},
		})
	}
	waitFor(t, "gang FailedScheduling", 3*time.Second, func() bool {
		return len(c.Store().Events("FailedScheduling")) > 0
	})
	c.KillPod("hog", "test")
	waitFor(t, "gang placed after capacity freed", 3*time.Second, func() bool {
		a, _ := c.Store().GetPod("gang-l0")
		b, _ := c.Store().GetPod("gang-l1")
		return a != nil && b != nil && a.Status.Node != "" && b.Status.Node != ""
	})
}

// TestStoreWatchDroppedCounter pins the backpressure accounting: an
// overflowing watcher buffer increments the per-watcher dropped counter,
// and the resync harvest (TakeDropped) clears it.
func TestStoreWatchDroppedCounter(t *testing.T) {
	s := NewStore()
	w := s.Watch(KindNode)
	defer w.Cancel()
	for i := 0; i < 600; i++ {
		s.PutNode(&Node{Name: fmt.Sprintf("n%d", i%4), Ready: true})
	}
	d := w.Dropped()
	if d == 0 {
		t.Fatal("overflowing the watch buffer did not increment the dropped counter")
	}
	if taken := w.TakeDropped(); taken != d {
		t.Fatalf("TakeDropped = %d, want %d", taken, d)
	}
	if w.Dropped() != 0 {
		t.Fatal("TakeDropped did not clear the dropped counter")
	}
}

// TestResyncTickSkipsRebuildWithoutDrops pins the conditional resync at
// the cluster level: with zero dropped events, resync ticks run only the
// revision audit — FullScans stays at the boot scan while ResyncsSkipped
// grows and the audit proves the view current.
func TestResyncTickSkipsRebuildWithoutDrops(t *testing.T) {
	cfg := Config{
		SchedulerInterval: 2 * time.Millisecond,
		ResyncInterval:    time.Hour,
		HeartbeatInterval: time.Hour,
		NodeGracePeriod:   time.Hour,
	}
	c := NewCluster(cfg)
	t.Cleanup(c.Stop)
	c.AddNode("node0", "K80", gpuRes(4))
	waitFor(t, "resync ticks audited", 3*time.Second, func() bool {
		st := c.SchedStats()
		return st.ResyncsSkipped >= 5 && st.AuditsClean >= 1
	})
	st := c.SchedStats()
	if st.FullScans != 1 {
		t.Fatalf("FullScans = %d, want 1 (boot only): ticks without drops must not rebuild", st.FullScans)
	}
	if st.EventsDropped != 0 {
		t.Fatalf("EventsDropped = %d with an idle watcher", st.EventsDropped)
	}
}

// TestDroppedEventsForceRebuildThenClear drives a schedCore directly:
// watcher overflow makes the next resync tick rebuild the view (and
// harvest the counter); the tick after, with no further drops, is
// audit-only.
func TestDroppedEventsForceRebuildThenClear(t *testing.T) {
	c := dirtySetCluster(t, Config{HeartbeatInterval: time.Hour})
	c.AddNode("node0", "K80", gpuRes(2))
	w := c.Store().Watch("")
	defer w.Cancel()
	s := &schedCore{c: c, watch: w}
	s.resync()
	if s.stats.FullScans != 1 {
		t.Fatalf("boot FullScans = %d", s.stats.FullScans)
	}
	// Overflow this watcher: more mutations than its buffer, unconsumed.
	for i := 0; i < 600; i++ {
		c.Store().UpdateNode("node0", func(n *Node) {
			n.LastHeartbeat = n.LastHeartbeat.Add(time.Millisecond)
		})
	}
	if w.Dropped() == 0 {
		t.Fatal("watch buffer never overflowed")
	}
	s.resyncTick()
	if s.stats.FullScans != 2 {
		t.Fatalf("dropped events did not force a rebuild (FullScans=%d)", s.stats.FullScans)
	}
	if s.stats.EventsDropped == 0 {
		t.Fatal("rebuild did not account the harvested drops")
	}
	if w.Dropped() != 0 {
		t.Fatal("rebuild did not clear the watcher's dropped counter")
	}
	s.resyncTick()
	if s.stats.FullScans != 2 {
		t.Fatal("drop-free tick rebuilt the view")
	}
	if s.stats.ResyncsSkipped != 1 || s.stats.AuditsClean != 1 {
		t.Fatalf("drop-free tick skipped=%d clean=%d, want 1/1",
			s.stats.ResyncsSkipped, s.stats.AuditsClean)
	}
}

// TestResyncTickRunsPassForDrainedEvents: a select race can route a
// wake-worthy event to the resync tick instead of the event case; the
// tick's drop-free skip path must still evaluate what it drained — a
// skipped rebuild must never mean a skipped scheduling pass.
func TestResyncTickRunsPassForDrainedEvents(t *testing.T) {
	c := dirtySetCluster(t, Config{HeartbeatInterval: time.Hour})
	c.AddNode("node0", "K80", gpuRes(2))
	w := c.Store().Watch("")
	defer w.Cancel()
	s := &schedCore{c: c, watch: w}
	s.resync()
	base := s.stats.Passes
	// The pod-add event lands in this watcher's queue synchronously.
	c.Store().PutPod(&Pod{
		Name: "hungry",
		Spec: PodSpec{Demand: sched.Resources{GPUs: 64}, Type: "learner"},
	})
	s.resyncTick()
	if s.stats.FullScans != 1 {
		t.Fatalf("drop-free tick rebuilt the view (FullScans=%d)", s.stats.FullScans)
	}
	if s.stats.Passes != base+1 {
		t.Fatalf("tick drained a new-pod event without scheduling a pass (Passes=%d, want %d)",
			s.stats.Passes, base+1)
	}
}

// TestSchedStatsCountBindings sanity-checks the published counters.
func TestSchedStatsCountBindings(t *testing.T) {
	c := testCluster(t, Config{})
	c.RegisterRuntime("quick", completeAfter(time.Millisecond))
	c.AddNode("node0", "K80", gpuRes(4))
	for i := 0; i < 3; i++ {
		c.Store().PutPod(&Pod{Name: fmt.Sprintf("p%d", i), Spec: PodSpec{Demand: gpuRes(1), Runtime: "quick"}})
	}
	waitFor(t, "all pods bound", 3*time.Second, func() bool {
		return c.SchedStats().PodsBound >= 3
	})
	st := c.SchedStats()
	if st.Passes == 0 || st.NodesExamined == 0 {
		t.Fatalf("stats not accounted: %+v", st)
	}
}
