package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/ffdl/ffdl/internal/commitlog"
)

// Durable-log plumbing: where each platform log lives under
// Config.DataDir, and the payload codecs for the records that must
// outlive the process. The DataDir layout is one commitlog.FileStore
// directory per log:
//
//	<DataDir>/mongo-oplog/            the metadata store's oplog
//	<DataDir>/status-bus/             the status bus's replay window
//	<DataDir>/learner-logs/<jobID>/   one log per job's learner lines
//
// With DataDir unset every log rides a MemStore and nothing survives
// the process — the simulation default. The etcd watch history keeps
// its Raft-snapshot persistence and is intentionally not in DataDir:
// the coordination state it indexes (learner keys, control verbs) is
// itself rebuilt from scratch on a cold restart, so durable watch
// offsets would resume into a world that no longer matches them.

// Log directory names under DataDir.
const (
	dirMongoOplog  = "mongo-oplog"
	dirStatusBus   = "status-bus"
	dirLearnerLogs = "learner-logs"
)

// StoreWrapper wraps a durable log's segment store as it opens. name is
// the log's DataDir-relative directory ("mongo-oplog",
// "learner-logs/<jobID>", ...). The chaos harness injects
// commitlog.FaultStore corruption under the real file layout this way;
// production configs leave it nil.
type StoreWrapper func(name string, store commitlog.SegmentStore) commitlog.SegmentStore

// openLogStore opens the segment store for the named log: a FileStore
// under dataDir, or a fresh MemStore when dataDir is empty.
func openLogStore(dataDir, name string, wrap StoreWrapper) (commitlog.SegmentStore, error) {
	var store commitlog.SegmentStore
	if dataDir == "" {
		store = commitlog.NewMemStore()
	} else {
		fs, err := commitlog.OpenFileStore(filepath.Join(dataDir, name))
		if err != nil {
			return nil, fmt.Errorf("core: open %s store: %w", name, err)
		}
		store = fs
	}
	if wrap != nil {
		store = wrap(name, store)
	}
	return store, nil
}

// hasLogDir reports whether the named log already exists on disk —
// read paths use it to reopen recovered logs lazily without littering
// DataDir with empty directories for unknown names.
func hasLogDir(dataDir, name string) bool {
	if dataDir == "" {
		return false
	}
	st, err := os.Stat(filepath.Join(dataDir, name))
	return err == nil && st.IsDir()
}

// Payload codecs. Like the mongo oplog codec, these carry no checksum
// of their own: commit-log record frames already CRC their payloads.

var errDurableShort = errors.New("core: truncated durable record payload")

const maxDurableLen = 1 << 26

// encodeStatusEvent appends the durable form of a bus event.
func encodeStatusEvent(dst []byte, ev StatusEvent) []byte {
	dst = appendDurableString(dst, ev.JobID)
	dst = binary.AppendVarint(dst, int64(ev.Seq))
	dst = appendDurableString(dst, string(ev.Status))
	dst = appendDurableString(dst, string(ev.Entry.Status))
	dst = binary.AppendVarint(dst, ev.Entry.Time.UnixNano())
	return appendDurableString(dst, ev.Entry.Message)
}

// decodeStatusEvent parses one durable bus event.
func decodeStatusEvent(data []byte) (StatusEvent, error) {
	r := durableReader{buf: data}
	var ev StatusEvent
	var err error
	if ev.JobID, err = r.str(); err != nil {
		return StatusEvent{}, err
	}
	seq, err := r.varint()
	if err != nil {
		return StatusEvent{}, err
	}
	ev.Seq = int(seq)
	s, err := r.str()
	if err != nil {
		return StatusEvent{}, err
	}
	ev.Status = JobStatus(s)
	if s, err = r.str(); err != nil {
		return StatusEvent{}, err
	}
	ev.Entry.Status = JobStatus(s)
	ns, err := r.varint()
	if err != nil {
		return StatusEvent{}, err
	}
	ev.Entry.Time = time.Unix(0, ns)
	if ev.Entry.Message, err = r.str(); err != nil {
		return StatusEvent{}, err
	}
	return ev, r.done()
}

// encodeLogLine appends the durable form of a learner log line.
func encodeLogLine(dst []byte, line LogLine) []byte {
	dst = appendDurableString(dst, line.JobID)
	dst = binary.AppendVarint(dst, int64(line.Learner))
	dst = binary.AppendUvarint(dst, line.Offset)
	dst = binary.AppendVarint(dst, line.Time.UnixNano())
	return appendDurableString(dst, line.Text)
}

// decodeLogLine parses one durable learner log line.
func decodeLogLine(data []byte) (LogLine, error) {
	r := durableReader{buf: data}
	var line LogLine
	var err error
	if line.JobID, err = r.str(); err != nil {
		return LogLine{}, err
	}
	learner, err := r.varint()
	if err != nil {
		return LogLine{}, err
	}
	line.Learner = int(learner)
	if line.Offset, err = r.uvarint(); err != nil {
		return LogLine{}, err
	}
	ns, err := r.varint()
	if err != nil {
		return LogLine{}, err
	}
	line.Time = time.Unix(0, ns)
	if line.Text, err = r.str(); err != nil {
		return LogLine{}, err
	}
	return line, r.done()
}

func appendDurableString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// durableReader is a bounds-checked cursor over an encoded payload.
type durableReader struct {
	buf []byte
	off int
}

func (r *durableReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, errDurableShort
	}
	r.off += n
	return v, nil
}

func (r *durableReader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, errDurableShort
	}
	r.off += n
	return v, nil
}

func (r *durableReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxDurableLen || r.off+int(n) > len(r.buf) {
		return "", errDurableShort
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *durableReader) done() error {
	if r.off != len(r.buf) {
		return fmt.Errorf("core: %d trailing bytes after durable payload", len(r.buf)-r.off)
	}
	return nil
}
