package rpc

import (
	"sync"
	"time"

	"github.com/ffdl/ffdl/internal/sim"
)

// LinkFault describes the fault mix injected on one client→replica link.
type LinkFault struct {
	// Drop is the probability a request frame is silently discarded. The
	// call hangs until the caller's context (or a resilience.Policy
	// deadline) rescues it — exactly how a lost packet presents.
	Drop float64
	// Dup is the probability a request frame is written twice. The server
	// executes the method twice; the client ignores the late duplicate
	// response, modeling at-least-once delivery.
	Dup float64
	// Delay is added latency before the request frame is written, slept
	// on the injector's clock.
	Delay time.Duration
}

// Faults injects per-link faults into the client side of the RPC
// transport, modeled on etcd.Cluster.CutLink: chaos code addresses a
// link by replica address and dials in drop/delay/duplicate mixes
// without touching the server. Install with Registry.SetFaults; every
// Balancer connection dialed through that registry applies the link's
// current fault mix on each request frame.
type Faults struct {
	clock sim.Clock

	mu      sync.Mutex
	rng     *sim.RNG
	links   map[string]LinkFault
	dropped int64
	duped   int64
	delayed int64
}

// NewFaults returns a fault injector drawing from the given seed. A nil
// clock delays on the wall clock.
func NewFaults(clock sim.Clock, seed int64) *Faults {
	if clock == nil {
		clock = sim.NewRealClock()
	}
	return &Faults{clock: clock, rng: sim.NewRNG(seed), links: make(map[string]LinkFault)}
}

// SetLink installs (or replaces) the fault mix for one replica address.
// A zero LinkFault heals the link.
func (f *Faults) SetLink(addr string, lf LinkFault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if lf == (LinkFault{}) {
		delete(f.links, addr)
		return
	}
	f.links[addr] = lf
}

// Cut fully severs (on=true) or heals (on=false) a link, the CutLink
// idiom: every request frame to addr is dropped.
func (f *Faults) Cut(addr string, on bool) {
	if on {
		f.SetLink(addr, LinkFault{Drop: 1})
	} else {
		f.SetLink(addr, LinkFault{})
	}
}

// Heal clears every link fault.
func (f *Faults) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.links = make(map[string]LinkFault)
}

// FaultStats counts injected faults.
type FaultStats struct {
	Dropped int64 `json:"dropped"`
	Duped   int64 `json:"duped"`
	Delayed int64 `json:"delayed"`
}

// Stats returns cumulative injected-fault counts.
func (f *Faults) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FaultStats{Dropped: f.dropped, Duped: f.duped, Delayed: f.delayed}
}

// decide draws the fault outcome for one request frame on addr.
func (f *Faults) decide(addr string) (drop, dup bool, delay time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	lf, ok := f.links[addr]
	if !ok {
		return false, false, 0
	}
	if lf.Drop > 0 && f.rng.Bernoulli(lf.Drop) {
		f.dropped++
		return true, false, lf.Delay
	}
	if lf.Dup > 0 && f.rng.Bernoulli(lf.Dup) {
		f.duped = f.duped + 1
		dup = true
	}
	if lf.Delay > 0 {
		f.delayed++
	}
	return false, dup, lf.Delay
}
