package expt

import (
	"fmt"

	"github.com/ffdl/ffdl/internal/perf"
)

// --- Table 1: FfDL vs bare metal overhead ---

// Table1Row is one (benchmark, configuration) overhead measurement.
type Table1Row struct {
	Model     perf.Model
	Framework perf.Framework
	Learners  int
	GPUsPerL  int
	// Overhead is the fractional throughput decrease vs bare metal.
	Overhead float64
	// FfDLImagesPerSec and BareImagesPerSec are the absolute rates.
	FfDLImagesPerSec float64
	BareImagesPerSec float64
}

// table1Configs are the paper's eight job shapes.
var table1Configs = []struct{ l, g int }{
	{1, 1}, {1, 2}, {1, 4}, {2, 1}, {2, 2}, {2, 4}, {4, 2}, {4, 4},
}

// Table1 reproduces the §5.1 overhead study: VGG-16/Caffe and
// InceptionV3/TensorFlow across 8 learner×GPU configurations on K80s.
func Table1() []Table1Row {
	benches := []struct {
		m  perf.Model
		fw perf.Framework
	}{
		{perf.VGG16, perf.Caffe},
		{perf.InceptionV3, perf.TensorFlow},
	}
	var rows []Table1Row
	for _, b := range benches {
		for _, cf := range table1Configs {
			c := perf.Config{
				Model: b.m, Framework: b.fw, GPUType: perf.K80,
				Learners: cf.l, GPUsPerL: cf.g, CPUThreads: 8, BatchSize: 64,
			}
			bare := perf.BareMetalThroughput(c)
			ffdl := perf.FfDLThroughput(c)
			rows = append(rows, Table1Row{
				Model: b.m, Framework: b.fw, Learners: cf.l, GPUsPerL: cf.g,
				Overhead:         perf.FfDLOverhead(c),
				FfDLImagesPerSec: ffdl, BareImagesPerSec: bare,
			})
		}
	}
	return rows
}

// Table1Render formats the rows like the paper's Table 1.
func Table1Render() *Table {
	t := &Table{
		Title:  "Table 1: Performance overhead of FfDL vs. Bare Metal (images/sec)",
		Header: []string{"Benchmark", "Config", "Bare Metal", "FfDL", "Decr. in Perf."},
		Caption: "Paper reports 0.32%-5.35% across these configurations; " +
			"shape preserved: overhead grows with distribution, stays < ~5.5%.",
	}
	for _, r := range Table1Rows() {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s/%s", r.Model, r.Framework),
			fmt.Sprintf("%dL x %dGPU/L", r.Learners, r.GPUsPerL),
			f1(r.BareImagesPerSec), f1(r.FfDLImagesPerSec), pct(r.Overhead),
		})
	}
	return t
}

// Table1Rows is an alias of Table1 kept for readable call sites.
func Table1Rows() []Table1Row { return Table1() }

// --- Table 2: FfDL vs NVIDIA DGX-1 ---

// Table2Row is one DGX-1 comparison measurement.
type Table2Row struct {
	Model perf.Model
	GPUs  int
	// Gap is the fractional throughput advantage of the DGX-1.
	Gap float64
}

// Table2 reproduces the §5.1 DGX-1 comparison on TensorFlow P100
// configurations.
func Table2() []Table2Row {
	var rows []Table2Row
	for _, gpus := range []int{1, 2} {
		for _, m := range []perf.Model{perf.InceptionV3, perf.ResNet50, perf.VGG16} {
			c := perf.Config{
				Model: m, Framework: perf.TensorFlow, GPUType: perf.P100,
				Learners: 1, GPUsPerL: gpus, CPUThreads: 28, BatchSize: 64,
			}
			rows = append(rows, Table2Row{Model: m, GPUs: gpus, Gap: perf.DGXGap(c)})
		}
	}
	return rows
}

// Table2Render formats Table 2.
func Table2Render() *Table {
	t := &Table{
		Title:  "Table 2: Performance overhead of FfDL vs. NVIDIA DGX-1 (TensorFlow)",
		Header: []string{"Benchmark", "# GPUs", "GPU Type", "Difference in Performance"},
		Caption: "Paper: 3.3-7.8% at 1 GPU, 10.1-13.7% at 2 GPUs (NVLink advantage); " +
			"shape preserved: gap grows with GPUs, bounded by ~15%.",
	}
	for _, r := range Table2() {
		t.Rows = append(t.Rows, []string{string(r.Model), fmt.Sprintf("%d", r.GPUs), "P100", pct(r.Gap)})
	}
	return t
}

// --- Table 4: VGG-16/Caffe CPU-thread scaling ---

// Table4Row is throughput at a CPU-thread count for two GPU types.
type Table4Row struct {
	Threads  int
	P100Thpt float64 // 0 when the paper leaves the cell empty
	V100Thpt float64
}

// Table4 reproduces the §5.4 Caffe CPU-scaling sweep (batch size 75).
func Table4() []Table4Row {
	mk := func(g perf.GPUType, threads int) float64 {
		return perf.BareMetalThroughput(perf.Config{
			Model: perf.VGG16, Framework: perf.Caffe, GPUType: g,
			Learners: 1, GPUsPerL: 1, CPUThreads: threads, BatchSize: 75,
		})
	}
	var rows []Table4Row
	for _, th := range []int{2, 4, 8, 16, 28} {
		r := Table4Row{Threads: th, V100Thpt: mk(perf.V100, th)}
		if th <= 8 {
			// The paper stops the P100 sweep at 8 threads (already
			// saturated).
			r.P100Thpt = mk(perf.P100, th)
		}
		rows = append(rows, r)
	}
	return rows
}

// Table4Render formats Table 4.
func Table4Render() *Table {
	t := &Table{
		Title:   "Table 4: Throughput (images/sec) scaling of VGG-16/Caffe with CPU threads (batch 75)",
		Header:  []string{"CPU-threads", "thpt-1P100", "thpt-1V100"},
		Caption: "Paper: P100 ~66, V100 ~107, both saturated by 4-8 threads.",
	}
	for _, r := range Table4() {
		p := ""
		if r.P100Thpt > 0 {
			p = f2(r.P100Thpt)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", r.Threads), p, f2(r.V100Thpt)})
	}
	return t
}

// --- Table 5: T-shirt sizes ---

// Table5Render formats the t-shirt size catalog.
func Table5Render() *Table {
	t := &Table{
		Title:   "Table 5: T-shirt size recommendation for FfDL jobs",
		Header:  []string{"GPU-type", "CPU", "memory (GB)"},
		Caption: "Derived by saturating GPUs via the CPU-scaling model, then rounding up (§5.4).",
	}
	for _, s := range perf.StandardSizes() {
		t.Rows = append(t.Rows, []string{s.Label(), fmt.Sprintf("%d", s.CPU), fmt.Sprintf("%d", s.MemoryGB)})
	}
	return t
}

// --- Table 6: TensorFlow CPU scaling + GPU utilization ---

// Table6Row is throughput and utilization per model at a thread count.
type Table6Row struct {
	Threads int
	Model   perf.Model
	Thpt    float64
	Util    float64
}

// Table6 reproduces the §5.4 TensorFlow sweep on V100, batch 128.
func Table6() []Table6Row {
	var rows []Table6Row
	for _, th := range []int{16, 28} {
		for _, m := range []perf.Model{perf.InceptionV3, perf.ResNet50, perf.VGG16} {
			c := perf.Config{
				Model: m, Framework: perf.TensorFlow, GPUType: perf.V100,
				Learners: 1, GPUsPerL: 1, CPUThreads: th, BatchSize: 128,
			}
			rows = append(rows, Table6Row{
				Threads: th, Model: m,
				Thpt: perf.BareMetalThroughput(c),
				Util: perf.GPUUtilization(c),
			})
		}
	}
	return rows
}

// Table6Render formats Table 6.
func Table6Render() *Table {
	t := &Table{
		Title:   "Table 6: TensorFlow throughput (images/sec) and GPU utilization on 1 V100, batch 128",
		Header:  []string{"CPU-threads", "InceptionV3", "Resnet-50", "VGG-16"},
		Caption: "Paper: TF benefits up to 28 threads; utilizations 86.8-98.7%.",
	}
	byThreads := map[int]map[perf.Model]Table6Row{}
	for _, r := range Table6() {
		if byThreads[r.Threads] == nil {
			byThreads[r.Threads] = map[perf.Model]Table6Row{}
		}
		byThreads[r.Threads][r.Model] = r
	}
	for _, th := range []int{16, 28} {
		cells := []string{fmt.Sprintf("%d", th)}
		for _, m := range []perf.Model{perf.InceptionV3, perf.ResNet50, perf.VGG16} {
			r := byThreads[th][m]
			cells = append(cells, fmt.Sprintf("%s (%.1f%%)", f1(r.Thpt), 100*r.Util))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t
}
