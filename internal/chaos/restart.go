package chaos

import (
	"fmt"
	"time"

	"github.com/ffdl/ffdl/internal/core"
)

// ProcessRestart is the restart-the-world harness: it models the
// coarsest fault the platform can survive — a full-process crash and
// cold restart. The Injector and CrashAPI/CrashLCM kill individual
// components inside a live process; a process restart instead loses
// every in-memory substrate at once (kube state, etcd coordination,
// the object store, the RPC registry, all in-flight goroutines) and
// keeps only what core.Config.DataDir persisted: the mongo oplog, the
// status bus's replay window, and per-job learner logs.
//
// Provision re-creates the external world — worker nodes, seeded
// dataset buckets — the way an operator's bootstrap would after a real
// machine restart. Everything else must come back from the durable
// logs: job documents and status history, log offsets, consumer
// cursors, and the retained floors that decide replay vs resync.
type ProcessRestart struct {
	cfg       core.Config
	provision func(*core.Platform) error
	p         *core.Platform
	restarts  int
	// lastReopen is how long the most recent boot (NewPlatform +
	// provision) took — recovery replay included.
	lastReopen time.Duration
}

// NewProcessRestart boots the first platform generation. provision (may
// be nil) runs after every boot, first included.
func NewProcessRestart(cfg core.Config, provision func(*core.Platform) error) (*ProcessRestart, error) {
	r := &ProcessRestart{cfg: cfg, provision: provision}
	if err := r.boot(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *ProcessRestart) boot() error {
	start := time.Now()
	p, err := core.NewPlatform(r.cfg)
	if err != nil {
		return fmt.Errorf("chaos: boot platform: %w", err)
	}
	if r.provision != nil {
		if err := r.provision(p); err != nil {
			p.Stop()
			return fmt.Errorf("chaos: provision: %w", err)
		}
	}
	r.lastReopen = time.Since(start)
	r.p = p
	return nil
}

// Platform returns the live generation.
func (r *ProcessRestart) Platform() *core.Platform { return r.p }

// Restart tears the entire platform down — mid-workload, nothing is
// drained — and boots a fresh generation from the same Config (and so
// the same DataDir). It returns the new generation.
func (r *ProcessRestart) Restart() (*core.Platform, error) {
	r.p.Stop()
	r.restarts++
	if err := r.boot(); err != nil {
		return nil, err
	}
	return r.p, nil
}

// Restarts returns how many full restarts have run.
func (r *ProcessRestart) Restarts() int { return r.restarts }

// ReopenLatency returns the wall time of the most recent boot,
// recovery replay included.
func (r *ProcessRestart) ReopenLatency() time.Duration { return r.lastReopen }

// Stop stops the live generation.
func (r *ProcessRestart) Stop() { r.p.Stop() }
