package expt

import (
	"context"
	"fmt"
	"time"

	"github.com/ffdl/ffdl/internal/core"
	"github.com/ffdl/ffdl/internal/perf"
	"github.com/ffdl/ffdl/internal/sched"
	"github.com/ffdl/ffdl/internal/sim"
	"github.com/ffdl/ffdl/internal/tenant"
)

// The multi-tenant experiment: the repo's own measurement of the tenant
// subsystem (queued admission, fair-share dispatch, checkpoint
// preemption — §3.6). It boots a full platform on a simulated clock,
// floods it with free-tier jobs that run far over their quotas, then
// has paid users reclaim their entitlements. The headline is
// Fig-3-style queue-delay accounting — the fraction of jobs queued
// beyond the paper's 15-minute satisfaction threshold, split by tier —
// plus preemption/requeue/resume counts: paid in-quota work dispatches
// promptly because the dispatcher checkpoints free-tier victims for it,
// while the free tier absorbs the queueing.

// MultiTenantConfig parameterizes one run.
type MultiTenantConfig struct {
	// Nodes is the number of 4-GPU K80 nodes. Default 2 (8 GPUs).
	Nodes int
	// FreeUsers / PaidUsers are the tenant mix. Defaults 2 / 2.
	FreeUsers int
	PaidUsers int
	// FreeJobsPerUser / PaidJobsPerUser shape the workload. The free
	// defaults exactly saturate the cluster (every free job runs, over
	// quota, when the paid wave arrives — the §3.6 preemption setup);
	// the paid wave then exceeds capacity so its tail queues. Defaults
	// 1 / 2.
	FreeJobsPerUser int
	PaidJobsPerUser int
	// GPUsPerJob sizes each single-learner job. Default 4.
	GPUsPerJob int
	// FreeQuota / PaidQuota are the per-tier GPU entitlements.
	// Defaults 1 / 8 — free users always run over quota (preemptible),
	// paid users' jobs are in quota (may preempt).
	FreeQuota int
	PaidQuota int
	// Iterations per job; with TimeCompression below each iteration is
	// minutes of virtual time. Default 6 (~20 virtual minutes per job).
	Iterations int
	// Seed drives platform randomness.
	Seed int64
	// SettleWall is the FakeClock auto-advance quiescence window (wall
	// time); raise it on slow machines. Default 10ms.
	SettleWall time.Duration
	// Timeout bounds the whole run in wall time. Default 120s.
	Timeout time.Duration
	// DisablePreemption runs the ablation: starved in-quota work waits.
	DisablePreemption bool
}

func (c *MultiTenantConfig) defaults() {
	if c.Nodes <= 0 {
		c.Nodes = 2
	}
	if c.FreeUsers <= 0 {
		c.FreeUsers = 2
	}
	if c.PaidUsers <= 0 {
		c.PaidUsers = 2
	}
	if c.FreeJobsPerUser <= 0 {
		c.FreeJobsPerUser = 1
	}
	if c.PaidJobsPerUser <= 0 {
		c.PaidJobsPerUser = 2
	}
	if c.GPUsPerJob <= 0 {
		c.GPUsPerJob = 4
	}
	if c.FreeQuota <= 0 {
		c.FreeQuota = 1
	}
	if c.PaidQuota <= 0 {
		c.PaidQuota = 8
	}
	if c.Iterations <= 0 {
		c.Iterations = 6
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SettleWall <= 0 {
		c.SettleWall = 10 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 120 * time.Second
	}
}

// MultiTenantResult reports one run.
type MultiTenantResult struct {
	Nodes       int    `json:"nodes"`
	GPUs        int    `json:"gpus"`
	FreeUsers   int    `json:"free_users"`
	PaidUsers   int    `json:"paid_users"`
	Jobs        int    `json:"jobs"`
	Preemption  bool   `json:"preemption_enabled"`
	Completed   int    `json:"completed"`
	Preemptions int64  `json:"preemptions"`
	Requeues    uint64 `json:"requeues"`
	Resumes     uint64 `json:"resumes"`
	Dispatches  uint64 `json:"dispatches"`
	// QueuedOver15MinFree/Paid count jobs whose initial dispatch waited
	// beyond the paper's 15-minute threshold, by tier; the Pct fields
	// normalize by that tier's job count (Fig. 3's metric).
	QueuedOver15MinFree int     `json:"queued_over_15min_free"`
	QueuedOver15MinPaid int     `json:"queued_over_15min_paid"`
	QueuedPctFree       float64 `json:"queued_pct_free"`
	QueuedPctPaid       float64 `json:"queued_pct_paid"`
	MeanDelayMinFree    float64 `json:"mean_queue_delay_min_free"`
	MeanDelayMinPaid    float64 `json:"mean_queue_delay_min_paid"`
	MaxDelayMin         float64 `json:"max_queue_delay_min"`
	VirtualMinutes      float64 `json:"virtual_minutes"`
	WallSeconds         float64 `json:"wall_seconds"`
}

// MultiTenant runs the experiment once.
func MultiTenant(cfg MultiTenantConfig) (MultiTenantResult, error) {
	cfg.defaults()
	res := MultiTenantResult{
		Nodes: cfg.Nodes, GPUs: cfg.Nodes * 4,
		FreeUsers: cfg.FreeUsers, PaidUsers: cfg.PaidUsers,
		Jobs:       cfg.FreeUsers*cfg.FreeJobsPerUser + cfg.PaidUsers*cfg.PaidJobsPerUser,
		Preemption: !cfg.DisablePreemption,
	}
	wallStart := time.Now()

	fc := sim.NewFakeClock(time.Unix(0, 0))
	fc.StartAutoAdvance(cfg.SettleWall)
	defer fc.StopAutoAdvance()

	var quotas []tenant.Record
	freeUsers := make([]string, cfg.FreeUsers)
	paidUsers := make([]string, cfg.PaidUsers)
	for i := range freeUsers {
		freeUsers[i] = fmt.Sprintf("free-%d", i)
		quotas = append(quotas, tenant.Record{User: freeUsers[i], Tier: sched.TierFree, GPUs: cfg.FreeQuota})
	}
	for i := range paidUsers {
		paidUsers[i] = fmt.Sprintf("paid-%d", i)
		quotas = append(quotas, tenant.Record{User: paidUsers[i], Tier: sched.TierPaid, GPUs: cfg.PaidQuota})
	}

	p, err := core.NewPlatform(core.Config{
		Clock: fc,
		Seed:  cfg.Seed,
		// The control plane is event-driven; every ticker below is a
		// resync safety net, so on a multi-hour virtual horizon they are
		// stretched way out to keep the FakeClock event count (and thus
		// wall time) low without touching any latency that matters.
		PollInterval:      30 * time.Second,
		SchedulerInterval: time.Minute,
		ResyncInterval:    time.Minute,
		HeartbeatInterval: 2 * time.Minute,
		NodeGracePeriod:   10 * time.Minute,
		RendezvousTimeout: time.Hour,
		// Each modeled training second costs 600 virtual clock seconds,
		// so one iteration is minutes of virtual time and queue delays
		// land on the scale of Fig. 3's 15-minute threshold.
		TimeCompression: 600,
		Tenancy: &core.TenancyConfig{
			Quotas:            quotas,
			DisablePreemption: cfg.DisablePreemption,
		},
	})
	if err != nil {
		return res, err
	}
	defer p.Stop()
	for i := 0; i < cfg.Nodes; i++ {
		p.AddNode(fmt.Sprintf("node-%02d", i), "K80", 4, 40, 512<<10)
	}
	p.Store.EnsureBucket("datasets")
	if err := p.Store.Put("datasets", "data/shard-0", make([]byte, 1<<20)); err != nil {
		return res, err
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer cancel()
	c := p.Client()
	virtualStart := fc.Now()

	manifest := func(user string, i int) core.Manifest {
		return core.Manifest{
			Name: fmt.Sprintf("%s-job-%d", user, i), User: user,
			Framework: perf.Caffe, Model: perf.VGG16,
			Learners: 1, GPUsPerLearner: cfg.GPUsPerJob, GPUType: perf.K80,
			BatchSize: 64, Iterations: cfg.Iterations, CheckpointEvery: 2,
			DataBucket: "datasets", DataPrefix: "data/",
			Command: "caffe train -solver solver.prototxt",
		}
	}

	// Phase 1: the free tier floods the cluster, far over quota.
	var jobIDs []string
	tierOf := make(map[string]sched.Tier)
	for _, u := range freeUsers {
		for i := 0; i < cfg.FreeJobsPerUser; i++ {
			id, err := c.Submit(ctx, manifest(u, i))
			if err != nil {
				return res, fmt.Errorf("submit %s job %d: %w", u, i, err)
			}
			jobIDs = append(jobIDs, id)
			tierOf[id] = sched.TierFree
		}
	}
	// Give the free tier a head start so paid arrivals find it running.
	fc.Sleep(time.Minute)

	// Phase 2: the quota owners return and reclaim their entitlements.
	for _, u := range paidUsers {
		for i := 0; i < cfg.PaidJobsPerUser; i++ {
			id, err := c.Submit(ctx, manifest(u, i))
			if err != nil {
				return res, fmt.Errorf("submit %s job %d: %w", u, i, err)
			}
			jobIDs = append(jobIDs, id)
			tierOf[id] = sched.TierPaid
		}
	}

	// Drain: every job must reach a terminal status.
	for _, id := range jobIDs {
		st, err := c.WaitForStatus(ctx, id, core.StatusCompleted, time.Minute)
		if err != nil {
			return res, fmt.Errorf("wait %s: %w", id, err)
		}
		if st == core.StatusCompleted {
			res.Completed++
		}
	}

	res.Preemptions = p.Admission.Preemptions()
	st := p.Dispatcher.Stats()
	res.Requeues = st.Requeued
	res.Resumes = st.Resumed
	res.Dispatches = st.Dispatched

	// Fig-3-style accounting over initial dispatch delays, by tier.
	freeJobs, paidJobs := 0, 0
	var freeSum, paidSum time.Duration
	for _, d := range p.Dispatcher.QueueDelays() {
		if d.Resumed {
			continue // requeue delays are preemption cost, not admission delay
		}
		if m := d.Queued.Minutes(); m > res.MaxDelayMin {
			res.MaxDelayMin = m
		}
		switch tierOf[d.JobID] {
		case sched.TierFree:
			freeJobs++
			freeSum += d.Queued
			if d.Queued > 15*time.Minute {
				res.QueuedOver15MinFree++
			}
		case sched.TierPaid:
			paidJobs++
			paidSum += d.Queued
			if d.Queued > 15*time.Minute {
				res.QueuedOver15MinPaid++
			}
		}
	}
	if freeJobs > 0 {
		res.QueuedPctFree = 100 * float64(res.QueuedOver15MinFree) / float64(freeJobs)
		res.MeanDelayMinFree = freeSum.Minutes() / float64(freeJobs)
	}
	if paidJobs > 0 {
		res.QueuedPctPaid = 100 * float64(res.QueuedOver15MinPaid) / float64(paidJobs)
		res.MeanDelayMinPaid = paidSum.Minutes() / float64(paidJobs)
	}
	res.VirtualMinutes = fc.Since(virtualStart).Minutes()
	res.WallSeconds = time.Since(wallStart).Seconds()
	return res, nil
}

// MultiTenantCompare runs the preemption-enabled configuration and the
// no-preemption ablation over the identical workload.
func MultiTenantCompare(cfg MultiTenantConfig) (with, without MultiTenantResult, err error) {
	cfg.DisablePreemption = false
	with, err = MultiTenant(cfg)
	if err != nil {
		return with, without, err
	}
	cfg.DisablePreemption = true
	without, err = MultiTenant(cfg)
	return with, without, err
}

// RenderMultiTenant formats results as a table.
func RenderMultiTenant(results []MultiTenantResult) *Table {
	t := &Table{
		Title: "Multi-tenant: queue delay (>15 min, Fig. 3 metric) and preemption under a mixed free/paid workload",
		Header: []string{"Preemption", "GPUs", "Jobs", "Completed", "Preempted", "Requeued", "Resumed",
			"Free >15min", "Paid >15min", "Free mean (min)", "Paid mean (min)", "Virtual (min)"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%v", r.Preemption), fmt.Sprintf("%d", r.GPUs),
			fmt.Sprintf("%d", r.Jobs), fmt.Sprintf("%d", r.Completed),
			fmt.Sprintf("%d", r.Preemptions), fmt.Sprintf("%d", r.Requeues),
			fmt.Sprintf("%d", r.Resumes),
			fmt.Sprintf("%.0f%%", r.QueuedPctFree), fmt.Sprintf("%.0f%%", r.QueuedPctPaid),
			f2(r.MeanDelayMinFree), f2(r.MeanDelayMinPaid),
			f2(r.VirtualMinutes),
		})
	}
	if len(results) == 2 && results[0].Preemption && !results[1].Preemption {
		t.Caption = fmt.Sprintf(
			"Checkpoint-preemption (%d victims) cuts paid in-quota queueing: %.0f%% of paid jobs queued >15 min (mean %.1f min) vs %.0f%% (mean %.1f min) without preemption.",
			results[0].Preemptions,
			results[0].QueuedPctPaid, results[0].MeanDelayMinPaid,
			results[1].QueuedPctPaid, results[1].MeanDelayMinPaid)
	} else if len(results) > 0 {
		r := results[0]
		t.Caption = fmt.Sprintf(
			"Paid in-quota work preempts free-tier victims (%d preemptions): %.0f%% of paid jobs queued >15 min vs %.0f%% of free jobs.",
			r.Preemptions, r.QueuedPctPaid, r.QueuedPctFree)
	}
	return t
}
