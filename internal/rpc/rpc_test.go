package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

type echoReq struct {
	Msg string
	N   int
}

type echoResp struct {
	Msg string
	N   int
}

func newEchoServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := NewServer()
	s.Register("Echo", echoReq{}, func(_ context.Context, arg any) (any, error) {
		r := arg.(echoReq)
		return echoResp{Msg: r.Msg, N: r.N + 1}, nil
	})
	s.Register("Fail", echoReq{}, func(_ context.Context, arg any) (any, error) {
		return nil, errors.New("boom")
	})
	s.RegisterStream("Count", echoReq{}, func(ctx context.Context, arg any, send func(any) error) error {
		r := arg.(echoReq)
		for i := 0; i < r.N; i++ {
			if err := send(echoResp{Msg: r.Msg, N: i}); err != nil {
				return err
			}
		}
		return nil
	})
	s.RegisterStream("Forever", echoReq{}, func(ctx context.Context, arg any, send func(any) error) error {
		for i := 0; ; i++ {
			select {
			case <-ctx.Done():
				return nil
			default:
			}
			if err := send(echoResp{N: i}); err != nil {
				return err
			}
			time.Sleep(time.Millisecond)
		}
	})
	addr, err := s.Listen()
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(s.Close)
	return s, addr
}

func TestUnaryCall(t *testing.T) {
	_, addr := newEchoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var resp echoResp
	if err := c.Call(context.Background(), "Echo", echoReq{Msg: "hi", N: 41}, &resp); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if resp.Msg != "hi" || resp.N != 42 {
		t.Fatalf("resp = %+v, want {hi 42}", resp)
	}
}

func TestRemoteError(t *testing.T) {
	_, addr := newEchoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call(context.Background(), "Fail", echoReq{}, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if re.Message != "boom" {
		t.Fatalf("message = %q, want boom", re.Message)
	}
}

func TestMethodNotFound(t *testing.T) {
	_, addr := newEchoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call(context.Background(), "Nope", echoReq{}, nil)
	if err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestServerStream(t *testing.T) {
	_, addr := newEchoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sr, err := c.Stream(context.Background(), "Count", echoReq{Msg: "s", N: 5})
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for {
		var item echoResp
		err := sr.Recv(&item)
		if errors.Is(err, ErrStreamDone) {
			break
		}
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		got = append(got, item.N)
	}
	if len(got) != 5 {
		t.Fatalf("received %d items, want 5: %v", len(got), got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("items out of order: %v", got)
		}
	}
}

func TestStreamCancel(t *testing.T) {
	_, addr := newEchoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	sr, err := c.Stream(ctx, "Forever", echoReq{})
	if err != nil {
		t.Fatal(err)
	}
	var item echoResp
	if err := sr.Recv(&item); err != nil {
		t.Fatalf("first Recv: %v", err)
	}
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if err := sr.Recv(&item); err != nil {
			return // cancelled as expected
		}
	}
	t.Fatal("stream did not observe cancellation")
}

func TestConcurrentCallsOneConn(t *testing.T) {
	_, addr := newEchoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp echoResp
			if err := c.Call(context.Background(), "Echo", echoReq{N: i}, &resp); err != nil {
				errs <- err
				return
			}
			if resp.N != i+1 {
				errs <- fmt.Errorf("call %d got %d", i, resp.N)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServerCloseFailsInflight(t *testing.T) {
	s := NewServer()
	started := make(chan struct{})
	s.Register("Slow", echoReq{}, func(ctx context.Context, arg any) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	addr, err := s.Listen()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	callErr := make(chan error, 1)
	go func() {
		callErr <- c.Call(context.Background(), "Slow", echoReq{}, nil)
	}()
	<-started
	s.Close()
	select {
	case err := <-callErr:
		if !errors.Is(err, ErrConnClosed) {
			t.Fatalf("err = %v, want ErrConnClosed", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("call did not fail after server close")
	}
}

func TestBalancerFailover(t *testing.T) {
	reg := NewRegistry()
	s1, addr1 := newEchoServer(t)
	_, addr2 := newEchoServer(t)
	reg.Add("api", addr1)
	reg.Add("api", addr2)
	b := NewBalancer(reg, "api")
	defer b.Close()

	var resp echoResp
	if err := b.Call(context.Background(), "Echo", echoReq{N: 1}, &resp); err != nil {
		t.Fatalf("initial call: %v", err)
	}
	// Kill one replica; calls must keep succeeding via the other.
	s1.Close()
	reg.Remove("api", addr1)
	for i := 0; i < 10; i++ {
		if err := b.Call(context.Background(), "Echo", echoReq{N: i}, &resp); err != nil {
			t.Fatalf("call after replica crash: %v", err)
		}
	}
}

func TestBalancerFailoverWithStaleRegistry(t *testing.T) {
	// Even when the registry still lists a dead replica, calls fail over.
	reg := NewRegistry()
	s1, addr1 := newEchoServer(t)
	_, addr2 := newEchoServer(t)
	reg.Add("api", addr1)
	reg.Add("api", addr2)
	b := NewBalancer(reg, "api")
	defer b.Close()
	var resp echoResp
	if err := b.Call(context.Background(), "Echo", echoReq{}, &resp); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	for i := 0; i < 6; i++ {
		if err := b.Call(context.Background(), "Echo", echoReq{N: i}, &resp); err != nil {
			t.Fatalf("stale-registry failover call %d: %v", i, err)
		}
	}
}

func TestBalancerNoEndpoints(t *testing.T) {
	b := NewBalancer(NewRegistry(), "ghost")
	defer b.Close()
	err := b.Call(context.Background(), "Echo", echoReq{}, nil)
	if !errors.Is(err, ErrNoEndpoints) {
		t.Fatalf("err = %v, want ErrNoEndpoints", err)
	}
}

func TestRegistryAddRemove(t *testing.T) {
	reg := NewRegistry()
	reg.Add("svc", "a")
	reg.Add("svc", "b")
	reg.Add("svc", "a") // duplicate ignored
	if got := reg.Lookup("svc"); len(got) != 2 {
		t.Fatalf("lookup = %v, want 2 addrs", got)
	}
	reg.Remove("svc", "a")
	if got := reg.Lookup("svc"); len(got) != 1 || got[0] != "b" {
		t.Fatalf("lookup after remove = %v, want [b]", got)
	}
	reg.Remove("svc", "missing") // no-op
}

func TestInterceptRejects(t *testing.T) {
	s, addr := newEchoServer(t)
	s.Intercept = func(m string) error {
		if m == "Echo" {
			return errors.New("injected fault")
		}
		return nil
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Call(context.Background(), "Echo", echoReq{}, nil)
	if err == nil {
		t.Fatal("intercepted call succeeded")
	}
}

// Property: Echo is the identity on messages for arbitrary payloads.
func TestEchoRoundTripProperty(t *testing.T) {
	_, addr := newEchoServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f := func(msg string, n int) bool {
		var resp echoResp
		if err := c.Call(context.Background(), "Echo", echoReq{Msg: msg, N: n}, &resp); err != nil {
			return false
		}
		return resp.Msg == msg && resp.N == n+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkRPCRoundtrip measures the unary wire path — client argument
// encode, frame multiplex, server decode/dispatch, reply encode, client
// decode — with allocation counts, pinning the pooled-buffer hot path.
func BenchmarkRPCRoundtrip(b *testing.B) {
	s := NewServer()
	s.Register("Echo", echoReq{}, func(_ context.Context, arg any) (any, error) {
		r := arg.(echoReq)
		return echoResp{Msg: r.Msg, N: r.N + 1}, nil
	})
	addr, err := s.Listen()
	if err != nil {
		b.Fatalf("Listen: %v", err)
	}
	defer s.Close()
	conn, err := Dial(addr)
	if err != nil {
		b.Fatalf("Dial: %v", err)
	}
	defer conn.Close()
	ctx := context.Background()
	req := echoReq{Msg: "payload-for-the-roundtrip-benchmark", N: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var resp echoResp
		if err := conn.Call(ctx, "Echo", req, &resp); err != nil {
			b.Fatal(err)
		}
		if resp.N != req.N+1 {
			b.Fatalf("bad reply: %+v", resp)
		}
	}
}
