package perf

import "fmt"

// TShirtSize is a recommended learner resource allocation for a GPU
// configuration (Table 5). The paper derives these by increasing CPU
// threads until the GPUs saturate, then rounding up — deliberately
// over-provisioning CPU/RAM since GPUs are the scarce, expensive
// resource (§5.4).
type TShirtSize struct {
	GPUs     int
	GPUType  GPUType
	CPU      int
	MemoryGB int
}

// Label formats the paper's row key ("2-P100").
func (t TShirtSize) Label() string { return fmt.Sprintf("%d-%s", t.GPUs, t.GPUType) }

// saturationThreads finds the smallest thread count achieving at least
// the target fraction of peak GPU throughput, searching the CPU-scaling
// model the same way the paper's sizing study swept thread counts.
func saturationThreads(fw Framework, target float64) int {
	for threads := 1; threads <= 64; threads++ {
		if cpuEfficiency(fw, threads) >= target {
			return threads
		}
	}
	return 64
}

// gpuThreadDemand is the per-GPU CPU-thread demand implied by the
// framework-agnostic sizing decision: FfDL sizes for the hungriest
// framework (TensorFlow, which benefits up to 28 threads on V100) scaled
// by GPU speed, "conservative ... since GPUs are the most expensive and
// scarce resource".
func gpuThreadDemand(g GPUType) float64 {
	// Threads needed to saturate one GPU of each generation for
	// TensorFlow-class input pipelines (Table 4/6: V100 ≈ 26, P100 ≈ 8,
	// K80 ≈ 4 — faster GPUs consume preprocessed input faster).
	tfThreads := float64(saturationThreads(TensorFlow, 0.9829)) // ≈ 26
	switch g {
	case V100:
		return tfThreads
	case P100:
		return tfThreads * 0.3
	case K80:
		return tfThreads * 0.15
	default:
		return tfThreads
	}
}

// memoryPerLearnerGB: "learner pod memory of around 9GB is sufficient
// for most of the jobs and this memory utilization does not depend on
// GPU type" (§5.4); the recommendation rounds up to 24GB per GPU for
// headroom, matching Table 5.
const memoryPerGPUGB = 24

// RecommendSize returns the t-shirt size for a GPU configuration.
// Multi-GPU learners share one input pipeline, so CPU demand grows
// sublinearly in GPUs (Table 5: 1-V100 → 26 CPUs but 2-V100 → 42, not
// 52).
func RecommendSize(gpus int, g GPUType) TShirtSize {
	perGPU := gpuThreadDemand(g)
	cpu := int(perGPU*(1+0.615*float64(gpus-1)) + 0.5)
	// Round to the provisioning granularity the paper's table shows.
	switch {
	case cpu <= 4:
		cpu = 4
	case cpu <= 8:
		cpu = 8
	case cpu <= 16:
		cpu = 16
	case cpu <= 26:
		cpu = 26
	case cpu <= 42:
		cpu = 42
	default:
		cpu = ((cpu + 7) / 8) * 8
	}
	return TShirtSize{GPUs: gpus, GPUType: g, CPU: cpu, MemoryGB: memoryPerGPUGB * gpus}
}

// StandardSizes returns the Table 5 catalog.
func StandardSizes() []TShirtSize {
	return []TShirtSize{
		RecommendSize(1, K80),
		RecommendSize(2, K80),
		RecommendSize(4, K80),
		RecommendSize(1, P100),
		RecommendSize(2, P100),
		RecommendSize(1, V100),
		RecommendSize(2, V100),
	}
}
