package expt

import "testing"

// TestRecoverySmoke pins the experiment's contract at a small size: the
// FileStore arm brings every job, log line and saved cursor back across
// the restart (with WatchStatus reconnects served by bus-log replay and
// a stale change-stream resume flagged by an explicit resync), while
// the MemStore ablation loses everything.
func TestRecoverySmoke(t *testing.T) {
	res, err := Recovery(RecoveryConfig{Jobs: 2, Churn: 3000, Seed: 1})
	if err != nil {
		t.Fatalf("Recovery: %v", err)
	}
	if len(res.Arms) != 2 || res.Arms[0].FileStore || !res.Arms[1].FileStore {
		t.Fatalf("arms = %+v, want [memstore, filestore]", res.Arms)
	}
	mem, file := res.Arms[0], res.Arms[1]

	if mem.RecoveredJobs != 0 || mem.RecoveredOps != 0 || mem.RecoveredLogLines != 0 || mem.CursorsPreserved != 0 {
		t.Fatalf("memstore arm recovered state across a process restart: %+v", mem)
	}
	if file.RecoveredJobs != res.Jobs {
		t.Fatalf("filestore arm recovered %d/%d jobs", file.RecoveredJobs, res.Jobs)
	}
	if file.RecoveredLogLines == 0 {
		t.Fatal("filestore arm recovered no learner-log lines")
	}
	if file.CursorsPreserved != res.Jobs {
		t.Fatalf("filestore arm preserved %d/%d cursors", file.CursorsPreserved, res.Jobs)
	}
	if file.RecoveredOps <= uint64(res.Churn) {
		t.Fatalf("filestore arm recovered %d oplog ops, want > churn %d", file.RecoveredOps, res.Churn)
	}
	if file.WatchReplays < 1 {
		t.Fatalf("filestore arm watch.replays = %d (refills %d), want >= 1",
			file.WatchReplays, file.WatchRefills)
	}
	if file.OplogFloor <= 1 || file.ResyncEvents != 1 {
		t.Fatalf("filestore arm floor = %d, resyncs = %d; churn should have raised the floor and flagged the stale resume",
			file.OplogFloor, file.ResyncEvents)
	}
	if file.ReopenMillis <= 0 {
		t.Fatal("filestore arm reported no reopen latency")
	}

	if tb := RenderRecovery(res); tb.Caption == "" || len(tb.Rows) != 2 {
		t.Fatalf("RenderRecovery: %+v", tb)
	}
}
