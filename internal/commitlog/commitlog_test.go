package commitlog

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func mustAppend(t *testing.T, l *Log, key string, payload []byte) uint64 {
	t.Helper()
	off, err := l.Append(key, payload)
	if err != nil {
		t.Fatalf("Append(%q): %v", key, err)
	}
	return off
}

func TestAppendReadBasics(t *testing.T) {
	l, err := Open(NewMemStore(), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 10; i++ {
		off := mustAppend(t, l, fmt.Sprintf("k%d", i%3), []byte(fmt.Sprintf("v%d", i)))
		if off != uint64(i) {
			t.Fatalf("offset %d, want %d", off, i)
		}
	}
	if got := l.NextOffset(); got != 10 {
		t.Fatalf("NextOffset = %d, want 10", got)
	}
	if rec, ok := l.Get(4); !ok || string(rec.Payload) != "v4" || rec.Key != "k1" {
		t.Fatalf("Get(4) = %+v, %v", rec, ok)
	}
	if _, ok := l.Get(10); ok {
		t.Fatal("Get(10) past end should miss")
	}
	r := l.ReadFrom(0)
	for i := 0; i < 10; i++ {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if rec.Offset != uint64(i) {
			t.Fatalf("read offset %d, want %d", rec.Offset, i)
		}
	}
	if _, err := r.Next(); !errors.Is(err, ErrEnd) {
		t.Fatalf("Next at end: %v, want ErrEnd", err)
	}
	// A reader is a cursor, not a snapshot: it sees later appends.
	mustAppend(t, l, "k0", []byte("v10"))
	rec, err := r.Next()
	if err != nil || rec.Offset != 10 {
		t.Fatalf("Next after append: %+v, %v", rec, err)
	}
}

func TestFirstOffset(t *testing.T) {
	l, err := Open(NewMemStore(), Options{FirstOffset: 1})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if off := mustAppend(t, l, "k", []byte("v")); off != 1 {
		t.Fatalf("first offset = %d, want 1", off)
	}
	if l.OldestOffset() != 1 {
		t.Fatalf("OldestOffset = %d, want 1", l.OldestOffset())
	}
}

func TestSegmentSealing(t *testing.T) {
	l, err := Open(NewMemStore(), Options{SegmentRecords: 4})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 9; i++ {
		mustAppend(t, l, "", []byte{byte(i)})
	}
	// 9 records at 4/segment: two sealed + active holding one.
	if got := l.SegmentCount(); got != 3 {
		t.Fatalf("SegmentCount = %d, want 3", got)
	}
	if got := l.Len(); got != 9 {
		t.Fatalf("Len = %d, want 9", got)
	}
}

func TestValueRidesMemory(t *testing.T) {
	type ev struct{ N int }
	l, err := Open(NewMemStore(), Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.AppendValue("k", ev{N: 7}); err != nil {
		t.Fatalf("AppendValue: %v", err)
	}
	rec, ok := l.Get(0)
	if !ok {
		t.Fatal("Get(0) missed")
	}
	if v, ok := rec.Value.(ev); !ok || v.N != 7 {
		t.Fatalf("Value = %#v, want ev{7}", rec.Value)
	}
}

func TestReopenRecoversRecordsAndConsumers(t *testing.T) {
	store := NewMemStore()
	l, err := Open(store, Options{SegmentRecords: 4})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 10; i++ {
		mustAppend(t, l, fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := l.Commit("watcher", 6); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	r, err := Open(store, Options{SegmentRecords: 4})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := r.Len(); got != 10 {
		t.Fatalf("reopened Len = %d, want 10", got)
	}
	if got := r.NextOffset(); got != 10 {
		t.Fatalf("reopened NextOffset = %d, want 10", got)
	}
	cur, ok := r.Committed("watcher")
	if !ok || cur != 6 {
		t.Fatalf("Committed = %d, %v; want 6, true", cur, ok)
	}
	recs := r.Records(cur)
	if len(recs) != 4 || recs[0].Offset != 6 {
		t.Fatalf("replay from cursor: %d records from %d", len(recs), recs[0].Offset)
	}
	// Payloads survived the store round trip.
	if string(recs[0].Payload) != "v6" {
		t.Fatalf("replayed payload %q, want v6", recs[0].Payload)
	}
}

func TestReopenNeverReusesOffsets(t *testing.T) {
	// A consumer's persisted cursor can point past the durable records
	// (e.g. the newest segment was lost): reopened allocation must skip
	// past it so an already-consumed offset is never re-minted.
	store := NewMemStore()
	l, err := Open(store, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	mustAppend(t, l, "k", []byte("v"))
	if err := l.Commit("c", 40); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	r, err := Open(store, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if off, _ := r.Append("k", []byte("w")); off < 40 {
		t.Fatalf("offset %d reused below persisted cursor 40", off)
	}
}

func TestTruncateBefore(t *testing.T) {
	l, err := Open(NewMemStore(), Options{SegmentRecords: 4})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 12; i++ {
		mustAppend(t, l, "", []byte{byte(i)})
	}
	if err := l.TruncateBefore(6); err != nil {
		t.Fatalf("TruncateBefore: %v", err)
	}
	if got := l.OldestOffset(); got != 6 {
		t.Fatalf("OldestOffset = %d, want 6", got)
	}
	// Logical truncation is exact even mid-segment.
	if got := l.Len(); got != 6 {
		t.Fatalf("Len = %d, want 6", got)
	}
	r := l.ReadFrom(3)
	if _, err := r.Next(); !errors.Is(err, ErrTruncatedBefore) {
		t.Fatalf("read below floor: %v, want ErrTruncatedBefore", err)
	}
	r.Seek(6)
	rec, err := r.Next()
	if err != nil || rec.Offset != 6 {
		t.Fatalf("read at floor: %+v, %v", rec, err)
	}
	if recs := l.Records(0); recs[0].Offset != 6 {
		t.Fatalf("Records(0) starts at %d, want 6", recs[0].Offset)
	}
}

func TestRetentionDropRespectsConsumerFloor(t *testing.T) {
	l, err := Open(NewMemStore(), Options{SegmentRecords: 2, MaxSegments: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := l.Commit("slow", 0); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	for i := 0; i < 20; i++ {
		mustAppend(t, l, "", []byte{byte(i)})
	}
	// The slow consumer pins offset 0: nothing may be dropped.
	if got := l.OldestOffset(); got != 0 {
		t.Fatalf("OldestOffset = %d, want 0 (pinned)", got)
	}
	if got := l.Len(); got != 20 {
		t.Fatalf("Len = %d, want 20 (pinned)", got)
	}
	// Release the pin: retention resumes at the next seal.
	if err := l.Forget("slow"); err != nil {
		t.Fatalf("Forget: %v", err)
	}
	for i := 0; i < 10; i++ {
		mustAppend(t, l, "", []byte{byte(i)})
	}
	if got := l.OldestOffset(); got == 0 {
		t.Fatal("retention still pinned after Forget")
	}
	if got := l.SegmentCount(); got > 3 {
		t.Fatalf("SegmentCount = %d, want <= 3", got)
	}
}

func TestCompactionKeepsLatestPerKey(t *testing.T) {
	l, err := Open(NewMemStore(), Options{SegmentRecords: 4, Compact: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 16; i++ {
		mustAppend(t, l, fmt.Sprintf("k%d", i%3), []byte(fmt.Sprintf("v%d", i)))
	}
	if l.CompactedRecords() == 0 {
		t.Fatal("compaction never fired")
	}
	// Latest record of each key must be retained with its payload.
	want := map[string]string{"k0": "v15", "k1": "v13", "k2": "v14"}
	got := make(map[string]string)
	for _, r := range l.Records(0) {
		got[r.Key] = string(r.Payload)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %s: latest %q, want %q", k, got[k], v)
		}
	}
}

// TestCompactionProperty is the satellite property test: a compacted
// log's latest-value-per-key equals an uncompacted twin's, and no
// record at or past a registered consumer's cursor is ever compacted
// out.
func TestCompactionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	compacted, err := Open(NewMemStore(), Options{SegmentRecords: 8, Compact: true, MaxSegments: 3})
	if err != nil {
		t.Fatalf("Open compacted: %v", err)
	}
	plain, err := Open(NewMemStore(), Options{SegmentRecords: 8})
	if err != nil {
		t.Fatalf("Open plain: %v", err)
	}
	var floor uint64
	for i := 0; i < 600; i++ {
		key := fmt.Sprintf("key-%d", rng.Intn(12))
		payload := []byte(fmt.Sprintf("payload-%d", i))
		offC, err := compacted.Append(key, payload)
		if err != nil {
			t.Fatalf("append compacted: %v", err)
		}
		offP, err := plain.Append(key, payload)
		if err != nil {
			t.Fatalf("append plain: %v", err)
		}
		if offC != offP {
			t.Fatalf("offset divergence: %d vs %d", offC, offP)
		}
		// A consumer trails the head, committing (monotonically)
		// forward now and then.
		if rng.Intn(20) == 0 {
			if lag := uint64(rng.Intn(30)); lag <= offC && offC-lag > floor {
				floor = offC - lag
				if err := compacted.Commit("trailing", floor); err != nil {
					t.Fatalf("Commit: %v", err)
				}
			}
		}
	}

	latest := func(recs []Record) map[string]Record {
		m := make(map[string]Record)
		for _, r := range recs {
			m[r.Key] = r // ascending offsets: last write wins
		}
		return m
	}
	lc, lp := latest(compacted.Records(0)), latest(plain.Records(0))
	if len(lc) != len(lp) {
		t.Fatalf("latest-per-key cardinality: %d vs %d", len(lc), len(lp))
	}
	for k, p := range lp {
		c, ok := lc[k]
		if !ok {
			t.Fatalf("key %s lost by compaction", k)
		}
		if c.Offset != p.Offset || !bytes.Equal(c.Payload, p.Payload) {
			t.Fatalf("key %s: compacted latest (%d,%q) != uncompacted (%d,%q)",
				k, c.Offset, c.Payload, p.Offset, p.Payload)
		}
	}

	// The consumer floor only moves up, and compaction only drops
	// records strictly below it — so every record at or past the final
	// floor must still be readable, verbatim.
	have := make(map[uint64][]byte)
	for _, r := range compacted.Records(floor) {
		have[r.Offset] = r.Payload
	}
	for _, r := range plain.Records(floor) {
		got, ok := have[r.Offset]
		if !ok {
			t.Fatalf("record %d (>= consumer floor %d) compacted out", r.Offset, floor)
		}
		if !bytes.Equal(got, r.Payload) {
			t.Fatalf("record %d payload diverged after compaction", r.Offset)
		}
	}

	if compacted.CompactedRecords() == 0 {
		t.Fatal("property run never exercised compaction")
	}
	if compacted.Len() >= plain.Len() {
		t.Fatalf("compacted log (%d) not smaller than plain (%d)", compacted.Len(), plain.Len())
	}
}

func TestCompactedReopenMatches(t *testing.T) {
	// Compaction rewrites sealed segments in the store; a reopen must
	// see exactly the retained records.
	store := NewMemStore()
	l, err := Open(store, Options{SegmentRecords: 4, Compact: true, MaxSegments: 2})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 40; i++ {
		mustAppend(t, l, fmt.Sprintf("k%d", i%4), []byte(fmt.Sprintf("v%d", i)))
	}
	before := l.Records(0)
	r, err := Open(store, Options{SegmentRecords: 4, Compact: true, MaxSegments: 2})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	after := r.Records(0)
	if len(after) != len(before) {
		t.Fatalf("reopen: %d records, want %d", len(after), len(before))
	}
	for i := range before {
		if before[i].Offset != after[i].Offset || !bytes.Equal(before[i].Payload, after[i].Payload) {
			t.Fatalf("record %d diverged across reopen", i)
		}
	}
}

func TestOffsetsLogRewriteBound(t *testing.T) {
	store := NewMemStore()
	l, err := Open(store, Options{OffsetsRewriteEvery: 8})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 100; i++ {
		if err := l.Commit("c", uint64(i)); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	data, _ := store.LoadOffsets()
	// 100 commits at rewrite-every-8 leaves at most 8 frames on disk.
	oneFrame := len(appendOffsetsFrame(nil, 99, []offsetEntry{{name: "c", next: 99}}))
	if len(data) > 8*oneFrame {
		t.Fatalf("offsets log %d bytes, want <= %d (rewrite bound)", len(data), 8*oneFrame)
	}
	r, err := Open(store, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if cur, ok := r.Committed("c"); !ok || cur != 99 {
		t.Fatalf("recovered cursor %d, %v; want 99", cur, ok)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	store := NewMemStore()
	l, err := Open(store, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 5; i++ {
		mustAppend(t, l, "k", []byte(fmt.Sprintf("v%d", i)))
	}
	// Tear the active segment's tail mid-frame.
	bases, _ := store.Segments()
	base := bases[len(bases)-1]
	data, _ := store.Load(base)
	if err := store.Rewrite(base, data[:len(data)-3]); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	r, err := Open(store, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("recovered %d records, want 4 (torn tail truncated)", got)
	}
	// The store-side tail was truncated too.
	clean, _ := store.Load(base)
	if recs, _, tornErr := decodeSegment(clean); tornErr != nil || len(recs) != 4 {
		t.Fatalf("store tail not cleaned: %d recs, %v", len(recs), tornErr)
	}
	// And recovery never appends into the recovered segment.
	off, err := r.Append("k", []byte("post"))
	if err != nil || off != 4 {
		t.Fatalf("post-recovery append: %d, %v; want 4", off, err)
	}
}

func TestDeadLogAfterStoreFailure(t *testing.T) {
	store := NewMemStore()
	l, err := Open(store, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	fault := NewFaultStore(store, 0)
	l.store = fault // every subsequent write crashes
	if _, err := l.Append("k", []byte("v")); !errors.Is(err, ErrDead) {
		t.Fatalf("append on dead store: %v, want ErrDead", err)
	}
	if _, err := l.Append("k", []byte("v")); !errors.Is(err, ErrDead) {
		t.Fatalf("append stays dead: %v", err)
	}
	if err := l.Commit("c", 1); !errors.Is(err, ErrDead) {
		t.Fatalf("commit on dead log: %v, want ErrDead", err)
	}
}

func TestFileStoreRoundtrip(t *testing.T) {
	dir := t.TempDir()
	fs, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("OpenFileStore: %v", err)
	}
	l, err := Open(fs, Options{SegmentRecords: 4})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 10; i++ {
		mustAppend(t, l, fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := l.Commit("c", 7); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	fs2, err := OpenFileStore(dir)
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	r, err := Open(fs2, Options{SegmentRecords: 4})
	if err != nil {
		t.Fatalf("reopen log: %v", err)
	}
	if got := r.Len(); got != 10 {
		t.Fatalf("reopened Len = %d, want 10", got)
	}
	if cur, ok := r.Committed("c"); !ok || cur != 7 {
		t.Fatalf("recovered cursor %d, %v; want 7", cur, ok)
	}
	if rec, ok := r.Get(9); !ok || string(rec.Payload) != "v9" {
		t.Fatalf("Get(9) = %+v, %v", rec, ok)
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x00},
		{recMagic},
		{recMagic, 0x05, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		bytes.Repeat([]byte{0xff}, 64),
	}
	for i, data := range cases {
		if recs, _, tornErr := decodeSegment(data); len(data) > 0 && tornErr == nil && len(recs) == 0 {
			t.Fatalf("case %d: garbage decoded cleanly", i)
		}
		decodeOffsetsLog(data) // must not panic
	}
	// A frame claiming an absurd payload length errors without allocating.
	huge := appendRecordFrame(nil, 1, "k", nil)
	huge[len(huge)-5] = 0xff // corrupt the CRC region harmlessly; decode fails
	if _, _, tornErr := decodeSegment(huge); tornErr == nil {
		t.Fatal("corrupt CRC accepted")
	}
}
