package core

import (
	"strconv"

	"github.com/ffdl/ffdl/internal/kube"
	"github.com/ffdl/ffdl/internal/learner"
)

// Runtime names registered with the kube cluster.
const (
	runtimeGuardian = "ffdl/guardian"
	runtimeHelper   = "ffdl/helper"
	runtimeLearner  = "ffdl/learner"
)

// registerRuntimes installs the platform's pod processes.
func (p *Platform) registerRuntimes() {
	p.Kube.RegisterRuntime(runtimeGuardian, p.runGuardian)
	p.Kube.RegisterRuntime(runtimeHelper, p.runHelper)
	p.Kube.RegisterRuntime(runtimeLearner, p.runLearner)
}

// runLearner is the learner pod's process: it wraps the simulated DL
// framework (internal/learner) with the job's data-plane handles.
func (p *Platform) runLearner(ctx *kube.PodContext) int {
	jobID := ctx.Pod.Spec.RuntimeArgs["job"]
	ordinal, _ := strconv.Atoi(ctx.Pod.Spec.RuntimeArgs["ordinal"])
	res, ok := p.getResources(jobID)
	if !ok {
		return 1 // job torn down while this pod was starting
	}
	m := res.manifest
	resultBucket := m.ResultBucket
	if resultBucket == "" {
		resultBucket = "ffdl-results"
	}
	proc := learner.New(learner.Spec{
		JobID:             jobID,
		Ordinal:           ordinal,
		Learners:          m.Learners,
		Model:             m.Model,
		Framework:         m.Framework,
		GPUType:           m.GPUType,
		GPUs:              m.GPUsPerLearner,
		CPUThreads:        m.CPUs,
		BatchSize:         m.BatchSize,
		Iterations:        m.Iterations,
		CheckpointEvery:   m.CheckpointEvery,
		Volume:            res.volume,
		Mount:             res.mount,
		DataBucket:        m.DataBucket,
		DataPrefix:        m.DataPrefix,
		ResultStore:       p.Store,
		ResultBucket:      resultBucket,
		Clock:             p.clock,
		TimeCompression:   p.cfg.TimeCompression,
		RendezvousTimeout: p.cfg.RendezvousTimeout,
	})
	return proc.Run(ctx.Stop)
}
