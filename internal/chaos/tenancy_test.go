package chaos

import (
	"bytes"
	"context"
	"testing"
	"time"

	"github.com/ffdl/ffdl/internal/core"
	"github.com/ffdl/ffdl/internal/sched"
	"github.com/ffdl/ffdl/internal/tenant"
)

// TestPreemptionSurvivesLCMFailover runs the §3.6 preemption story with
// every LCM replica crashing at the worst moment — right as the
// dispatcher issues the checkpoint-halt. The halt RPC may be lost
// entirely; the dispatcher's resync safety net must re-issue it once an
// LCM replica is back, the victim still requeues and resumes, and both
// jobs complete. This pins that preemption is level-triggered, not a
// fire-and-forget edge.
func TestPreemptionSurvivesLCMFailover(t *testing.T) {
	p, err := core.NewPlatform(core.Config{
		Seed:            23,
		PollInterval:    2 * time.Millisecond,
		LCMReplicas:     2,
		LCMRestartDelay: 40 * time.Millisecond,
		TimeCompression: 2e-3,
		Tenancy: &core.TenancyConfig{
			Quotas: []tenant.Record{
				{User: "freeloader", Tier: sched.TierFree, GPUs: 1},
				{User: "payer", Tier: sched.TierPaid, GPUs: 8},
			},
			// Tight resync so the re-issued halt lands quickly after the
			// LCM restart.
			ResyncInterval: 10 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	t.Cleanup(p.Stop)
	for _, n := range []string{"node0", "node1"} {
		p.AddNode(n, "K80", 4, 32, 256<<10)
	}
	p.Store.EnsureBucket("datasets")
	if err := p.Store.Put("datasets", "mnist/shard-0", bytes.Repeat([]byte{1}, 1<<20)); err != nil {
		t.Fatal(err)
	}

	c := p.Client()
	ctx := context.Background()
	manifest := func(user string) core.Manifest {
		return core.Manifest{
			Name: user + "-job", User: user,
			Framework: "Caffe", Model: "VGG-16",
			Learners: 2, GPUsPerLearner: 4, GPUType: "K80",
			BatchSize: 64, Iterations: 200, CheckpointEvery: 10,
			DataBucket: "datasets", DataPrefix: "mnist/",
			Command: "caffe train",
		}
	}

	free, err := c.Submit(ctx, manifest("freeloader"))
	if err != nil {
		t.Fatalf("submit free job: %v", err)
	}
	// Let it make checkpointed progress.
	deadline := time.Now().Add(20 * time.Second)
	for {
		objs, err := p.Store.List("ffdl-results", free+"/checkpoints/")
		if err == nil && len(objs) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("free job never checkpointed")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Kill every LCM replica, then immediately submit the in-quota job:
	// the dispatcher's Preempt call races the outage.
	p.CrashLCM(0)
	p.CrashLCM(1)
	paid, err := c.Submit(ctx, manifest("payer"))
	if err != nil {
		t.Fatalf("submit paid job: %v", err)
	}

	waitCompleted := func(id string) {
		t.Helper()
		wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
		defer cancel()
		st, err := c.WaitForStatus(wctx, id, core.StatusCompleted, 2*time.Millisecond)
		if err != nil || st != core.StatusCompleted {
			t.Fatalf("job %s = %v, err %v", id, st, err)
		}
	}
	waitCompleted(paid)
	waitCompleted(free)

	r, err := c.Status(ctx, free)
	if err != nil {
		t.Fatal(err)
	}
	halted, resumed := false, false
	for _, h := range r.History {
		switch h.Status {
		case core.StatusHalted:
			halted = true
		case core.StatusResumed:
			resumed = true
		}
	}
	if !halted || !resumed {
		t.Fatalf("victim history missing HALTED/RESUMED across LCM failover: %+v", r.History)
	}
	if st := p.Dispatcher.Stats(); st.Preempted == 0 || st.Resumed == 0 {
		t.Fatalf("dispatcher stats = %+v", st)
	}
}
