package expt

import "testing"

// TestMultiTenantPreemptsAndAccounts runs a small mixed free/paid
// workload and checks the §3.6 mechanics end to end: everything
// completes, the paid wave triggers checkpoint-preemption of free-tier
// victims, victims requeue and resume, and queue-delay accounting is
// populated on the Fig. 3 scale.
func TestMultiTenantPreemptsAndAccounts(t *testing.T) {
	res, err := MultiTenant(MultiTenantConfig{
		Nodes:     1, // 4 GPUs
		FreeUsers: 1, PaidUsers: 1,
		FreeJobsPerUser: 1, PaidJobsPerUser: 2,
		Iterations: 2,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%+v", res)
	if res.Completed != res.Jobs {
		t.Fatalf("completed %d/%d jobs", res.Completed, res.Jobs)
	}
	if res.Preemptions == 0 || res.Requeues == 0 || res.Resumes == 0 {
		t.Fatalf("no preemption activity: %+v", res)
	}
	if res.Dispatches != uint64(res.Jobs) {
		t.Fatalf("dispatches = %d, want %d", res.Dispatches, res.Jobs)
	}
	// The paid tail waits behind the resumed victim: delay accounting
	// must see it on the >15-minute scale.
	if res.QueuedOver15MinPaid == 0 {
		t.Fatalf("no paid job crossed the 15-minute threshold: %+v", res)
	}
	if res.VirtualMinutes < 15 {
		t.Fatalf("virtual horizon implausibly short: %v min", res.VirtualMinutes)
	}
}
