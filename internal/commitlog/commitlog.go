// Package commitlog is the platform's universal event substrate: an
// append-only log of (offset, key, payload) records split into bounded
// segments, with key-compaction of sealed segments, offset-addressed
// readers, and a persisted consumer-offset map — one retention
// mechanism instead of the three bespoke in-memory rings it replaced
// (the etcd watch-history ring, the status-bus buffers, and the mongo
// oplog's silent half-drop at 64k entries).
//
// Durability is pluggable through SegmentStore: the simulation runs on
// MemStore, FileStore persists segments on disk, and FaultStore wraps
// either with crash/corruption injection for the torture suite
// (Torture). The Log keeps a decoded in-memory index of every retained
// record and writes through to the store, so reads never touch the
// store; Open replays the store back, truncating any torn tail.
//
// Guarantees (pinned by the torture and property tests):
//
//   - Offsets are unique and strictly increasing, never reused — even
//     across a crash that loses a suffix of the log (Open resumes
//     allocation past every persisted consumer cursor).
//   - A recovered log is a prefix of what was appended: a torn tail is
//     truncated, nothing mid-log is silently dropped.
//   - A consumer cursor persisted with Commit is recovered as the
//     newest fully-durable commit; replaying from it re-reads exactly
//     the records the consumer had not yet processed.
//   - Key-compaction of sealed segments preserves the latest record of
//     every key, and never drops a record at or past the floor of the
//     registered consumers' cursors — a live consumer's position is
//     never compacted out from under it.
package commitlog

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/ffdl/ffdl/internal/obs"
	"github.com/ffdl/ffdl/internal/sim"
)

// Record is one appended entry. Offset is assigned by the log; Key is
// the compaction identity ("" = never superseded); Payload is the
// durable body.
//
// Value is an optional in-memory companion the simulation's hot paths
// use to skip payload codecs: it rides the in-memory index, is
// returned by readers, but is NOT persisted — a log reopened from a
// store sees only Payload. In-memory logs (MemStore) lose nothing;
// file-backed logs should encode everything into Payload.
type Record struct {
	Offset  uint64
	Key     string
	Payload []byte
	Value   any
}

// Options parameterizes a Log.
type Options struct {
	// FirstOffset is the offset of the first record ever appended
	// (default 0). The mongo oplog sets 1 so offsets coincide with its
	// historical 1-based sequence numbers.
	FirstOffset uint64
	// SegmentRecords seals the active segment after this many records
	// (default 1024).
	SegmentRecords int
	// SegmentBytes seals the active segment after this many encoded
	// bytes (default 1 MiB).
	SegmentBytes int64
	// Compact key-compacts segments as they seal: records superseded
	// by a later record with the same key are dropped, except at or
	// past the registered-consumer floor.
	Compact bool
	// MaxSegments bounds the sealed-segment count. With Compact, the
	// two oldest sealed segments are merged (no records lost beyond
	// compaction's latest-per-key rule); without it, the oldest
	// segment is dropped entirely — but never past a registered
	// consumer's cursor. 0 = unbounded (the owner trims explicitly via
	// TruncateBefore).
	MaxSegments int
	// OffsetsRewriteEvery bounds the offsets log: after this many
	// appended commit frames it is rewritten to a single frame
	// (default 256).
	OffsetsRewriteEvery int
	// Obs, when non-nil, wires the log into the platform's metrics
	// registry: append latency ("commitlog.append"), compaction runs
	// ("commitlog.compactions") and compacted-away records
	// ("commitlog.compacted_records"). Nil leaves every hot path
	// uninstrumented at zero cost.
	Obs *obs.Registry
	// Clock times instrumented appends (defaults to the real clock when
	// Obs is set and Clock is nil). Unused without Obs.
	Clock sim.Clock
}

func (o *Options) defaults() {
	if o.SegmentRecords <= 0 {
		o.SegmentRecords = 1024
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.OffsetsRewriteEvery <= 0 {
		o.OffsetsRewriteEvery = 256
	}
}

// Log errors.
var (
	// ErrEnd reports a reader caught up with the log's end.
	ErrEnd = errors.New("commitlog: end of log")
	// ErrTruncatedBefore reports a read below the retention floor: the
	// records were truncated and the consumer must resync from current
	// state instead of replaying.
	ErrTruncatedBefore = errors.New("commitlog: offset truncated from log")
	// ErrDead reports an append or commit after a store write failed;
	// the log is read-only from the first failed write (the in-memory
	// index never runs ahead of the store).
	ErrDead = errors.New("commitlog: store failed; log is read-only")
)

// segment is one bounded run of records. recs hold the decoded index;
// bytes mirrors the store-side encoded size.
type segment struct {
	base   uint64 // offset the segment was opened at (store name)
	recs   []Record
	bytes  int64
	sealed bool
}

// lastOffset returns the segment's final record offset (ok=false when
// empty).
func (s *segment) lastOffset() (uint64, bool) {
	if len(s.recs) == 0 {
		return 0, false
	}
	return s.recs[len(s.recs)-1].Offset, true
}

// Log is a segmented, compacting commit log. Safe for concurrent use.
type Log struct {
	mu    sync.Mutex
	store SegmentStore
	opts  Options

	segments []*segment // ascending base; last is active
	oldest   uint64     // logical retention floor (first readable offset)
	next     uint64     // next offset to assign
	records  int        // retained record count across segments

	consumers map[string]uint64 // consumer -> next unprocessed offset
	offGen    uint64            // generation of the last offsets commit
	offFrames int               // frames appended since last rewrite

	encBuf []byte // reused frame-encode scratch
	dead   error  // first store failure; log is read-only after

	// Registry instrument handles, derived once at Open; all nil when
	// Options.Obs is nil (nil instruments no-op for free).
	obsAppend      *obs.Histogram
	obsCompactions *obs.Counter
	obsCompacted   *obs.Counter
	clock          sim.Clock

	// Counters for the retention bench and tests.
	statCompactedRecords uint64 // records dropped by key-compaction
	statDroppedSegments  uint64 // segments dropped by retention
}

func (l *Log) lock()   { l.mu.Lock() }
func (l *Log) unlock() { l.mu.Unlock() }

// Open replays store into a ready Log. A torn tail on the newest
// segment (or, after corruption, any segment) is truncated — in the
// store too — and every segment after a torn one is discarded, so the
// recovered log is always a clean prefix. Consumer cursors come from
// the newest fully-valid offsets commit; offset allocation resumes
// past both the last record and every recovered cursor, so offsets are
// never reused for different records.
func Open(store SegmentStore, opts Options) (*Log, error) {
	opts.defaults()
	l := &Log{
		store:     store,
		opts:      opts,
		oldest:    opts.FirstOffset,
		next:      opts.FirstOffset,
		consumers: make(map[string]uint64),
	}
	if opts.Obs != nil {
		l.obsAppend = opts.Obs.Histogram("commitlog.append")
		l.obsCompactions = opts.Obs.Counter("commitlog.compactions")
		l.obsCompacted = opts.Obs.Counter("commitlog.compacted_records")
		l.clock = opts.Clock
		if l.clock == nil {
			l.clock = sim.NewRealClock()
		}
	}
	bases, err := store.Segments()
	if err != nil {
		return nil, fmt.Errorf("commitlog: open: %w", err)
	}
	torn := false
	for _, base := range bases {
		if torn {
			// Everything after a torn segment is suspect: drop it so
			// the recovered log stays a prefix.
			if err := store.Remove(base); err != nil {
				return nil, fmt.Errorf("commitlog: open: drop segment %d: %w", base, err)
			}
			continue
		}
		data, err := store.Load(base)
		if err != nil {
			return nil, fmt.Errorf("commitlog: open: load segment %d: %w", base, err)
		}
		recs, validLen, tornErr := decodeSegment(data)
		if tornErr != nil {
			torn = true
			if err := store.Rewrite(base, data[:validLen]); err != nil {
				return nil, fmt.Errorf("commitlog: open: truncate torn segment %d: %w", base, err)
			}
		}
		seg := &segment{base: base, recs: recs, bytes: int64(validLen), sealed: true}
		l.segments = append(l.segments, seg)
		if last, ok := seg.lastOffset(); ok && last >= l.next {
			l.next = last + 1
		}
		l.records += len(recs)
	}
	// Drop empty segments from the index (fresh actives and crash
	// leftovers hold no records); a later roll landing on the same
	// base reuses the store file.
	kept := l.segments[:0]
	for _, seg := range l.segments {
		if len(seg.recs) > 0 {
			kept = append(kept, seg)
		}
	}
	l.segments = kept
	if len(l.segments) > 0 {
		l.oldest = l.segments[0].recs[0].Offset
	}
	offData, err := store.LoadOffsets()
	if err != nil {
		return nil, fmt.Errorf("commitlog: open: offsets: %w", err)
	}
	if entries, gen, ok := decodeOffsetsLog(offData); ok {
		l.offGen = gen
		for _, e := range entries {
			l.consumers[e.name] = e.next
			// Never hand out an offset a consumer already accounts
			// for: records past the recovered log end that a consumer
			// had consumed must not be re-minted with new contents.
			if e.next > l.next {
				l.next = e.next
			}
		}
	}
	// Always roll a fresh active segment at the resume offset: every
	// recovered segment stays sealed, so a reopened log never appends
	// into bytes it did not fully validate.
	if err := l.rollLocked(); err != nil {
		return nil, err
	}
	return l, nil
}

// rollLocked seals the active segment and opens a new one at the next
// offset.
func (l *Log) rollLocked() error {
	if n := len(l.segments); n > 0 {
		l.segments[n-1].sealed = true
	}
	if err := l.store.Create(l.next); err != nil {
		l.dead = fmt.Errorf("%w: %v", ErrDead, err)
		return l.dead
	}
	l.segments = append(l.segments, &segment{base: l.next})
	return nil
}

// Append appends a record and returns its offset. The payload is
// copied; the key is retained as passed.
func (l *Log) Append(key string, payload []byte) (uint64, error) {
	return l.append(key, payload, nil)
}

// AppendValue appends a record whose body is the in-memory value
// (payload stays empty on the wire — see Record.Value).
func (l *Log) AppendValue(key string, value any) (uint64, error) {
	return l.append(key, nil, value)
}

func (l *Log) append(key string, payload []byte, value any) (uint64, error) {
	l.lock()
	defer l.unlock()
	if l.dead != nil {
		return 0, l.dead
	}
	if l.obsAppend != nil {
		start := l.clock.Now()
		defer func() { l.obsAppend.ObserveDuration(l.clock.Now().Sub(start)) }()
	}
	off := l.next
	l.encBuf = appendRecordFrame(l.encBuf[:0], off, key, payload)
	active := l.segments[len(l.segments)-1]
	n, err := l.store.Append(active.base, l.encBuf)
	if err != nil || n < len(l.encBuf) {
		if err == nil {
			err = fmt.Errorf("commitlog: short append (%d of %d bytes)", n, len(l.encBuf))
		}
		// The record is not (fully) durable: poison the log rather
		// than let the in-memory index diverge from the store.
		l.dead = fmt.Errorf("%w: %v", ErrDead, err)
		return 0, l.dead
	}
	rec := Record{Offset: off, Key: key, Value: value}
	if len(payload) > 0 {
		rec.Payload = append([]byte(nil), payload...)
	}
	active.recs = append(active.recs, rec)
	active.bytes += int64(len(l.encBuf))
	l.records++
	l.next = off + 1
	if len(active.recs) >= l.opts.SegmentRecords || active.bytes >= l.opts.SegmentBytes {
		if err := l.rollLocked(); err != nil {
			return off, err // the record itself is durable
		}
		l.maintainLocked()
	}
	return off, nil
}

// consumerFloorLocked returns the smallest registered consumer cursor
// (ok=false with no consumers).
func (l *Log) consumerFloorLocked() (uint64, bool) {
	first := true
	var floor uint64
	for _, next := range l.consumers {
		if first || next < floor {
			floor, first = next, false
		}
	}
	return floor, !first
}

// maintainLocked enforces compaction and the segment-count bound after
// a seal. Store failures poison the log like any other write failure.
func (l *Log) maintainLocked() {
	if l.dead != nil {
		return
	}
	if l.opts.Compact && len(l.segments) >= 2 {
		// Compact the segment that just sealed.
		l.compactSegmentsLocked(len(l.segments)-2, len(l.segments)-1)
	}
	if l.opts.MaxSegments <= 0 {
		return
	}
	for len(l.segments)-1 > l.opts.MaxSegments && l.dead == nil {
		if l.opts.Compact {
			// Merge the two oldest sealed segments; latest-per-key
			// retention means the merged result stays bounded.
			if !l.mergeOldestLocked() {
				return
			}
		} else if !l.dropOldestLocked() {
			return
		}
	}
}

// latestPerKeyLocked builds the newest-offset-per-key view across the
// whole retained log.
func (l *Log) latestPerKeyLocked() map[string]uint64 {
	latest := make(map[string]uint64)
	for _, seg := range l.segments {
		for _, r := range seg.recs {
			if r.Key == "" {
				continue
			}
			if cur, ok := latest[r.Key]; !ok || r.Offset > cur {
				latest[r.Key] = r.Offset
			}
		}
	}
	return latest
}

// compactableLocked reports whether rec may be dropped by compaction:
// superseded by a newer record with the same key, and strictly below
// every registered consumer's cursor.
func (l *Log) compactableLocked(rec Record, latest map[string]uint64) bool {
	if rec.Key == "" {
		return false
	}
	if latest[rec.Key] <= rec.Offset {
		return false
	}
	if floor, ok := l.consumerFloorLocked(); ok && rec.Offset >= floor {
		return false
	}
	return true
}

// compactSegmentsLocked key-compacts the sealed segments in [from,to).
func (l *Log) compactSegmentsLocked(from, to int) {
	latest := l.latestPerKeyLocked()
	for i := from; i < to; i++ {
		seg := l.segments[i]
		if !seg.sealed {
			continue
		}
		kept := seg.recs[:0:0]
		for _, r := range seg.recs {
			if !l.compactableLocked(r, latest) {
				kept = append(kept, r)
			}
		}
		if len(kept) == len(seg.recs) {
			continue
		}
		l.obsCompactions.Inc()
		l.obsCompacted.Add(int64(len(seg.recs) - len(kept)))
		l.statCompactedRecords += uint64(len(seg.recs) - len(kept))
		l.records -= len(seg.recs) - len(kept)
		data := encodeRecords(kept)
		if err := l.store.Rewrite(seg.base, data); err != nil {
			l.dead = fmt.Errorf("%w: %v", ErrDead, err)
			return
		}
		seg.recs = kept
		seg.bytes = int64(len(data))
	}
}

// mergeOldestLocked folds the second-oldest sealed segment into the
// oldest, compacting as it merges, so the old region of the log stays
// bounded by key cardinality (plus the consumer pin) rather than
// growing with write volume.
func (l *Log) mergeOldestLocked() bool {
	if len(l.segments) < 3 { // need two sealed + active
		return false
	}
	a, b := l.segments[0], l.segments[1]
	if !a.sealed || !b.sealed {
		return false
	}
	latest := l.latestPerKeyLocked()
	merged := make([]Record, 0, len(a.recs)+len(b.recs))
	for _, r := range a.recs {
		if !l.compactableLocked(r, latest) {
			merged = append(merged, r)
		}
	}
	for _, r := range b.recs {
		if !l.compactableLocked(r, latest) {
			merged = append(merged, r)
		}
	}
	l.statCompactedRecords += uint64(len(a.recs) + len(b.recs) - len(merged))
	l.records -= len(a.recs) + len(b.recs) - len(merged)
	data := encodeRecords(merged)
	if err := l.store.Rewrite(a.base, data); err != nil {
		l.dead = fmt.Errorf("%w: %v", ErrDead, err)
		return false
	}
	if err := l.store.Remove(b.base); err != nil {
		l.dead = fmt.Errorf("%w: %v", ErrDead, err)
		return false
	}
	a.recs = merged
	a.bytes = int64(len(data))
	l.segments = append(l.segments[:1], l.segments[2:]...)
	return true
}

// dropOldestLocked removes the oldest sealed segment entirely, unless
// a registered consumer still needs one of its records.
func (l *Log) dropOldestLocked() bool {
	if len(l.segments) < 2 {
		return false
	}
	seg := l.segments[0]
	if last, ok := seg.lastOffset(); ok {
		if floor, hasFloor := l.consumerFloorLocked(); hasFloor && last >= floor {
			return false // a live consumer would lose unseen records
		}
		l.oldest = last + 1
	}
	if err := l.store.Remove(seg.base); err != nil {
		l.dead = fmt.Errorf("%w: %v", ErrDead, err)
		return false
	}
	l.records -= len(seg.recs)
	l.statDroppedSegments++
	l.segments = l.segments[1:]
	return true
}

// encodeRecords re-encodes records into fresh segment bytes (used by
// compaction rewrites and merges).
func encodeRecords(recs []Record) []byte {
	var data []byte
	for _, r := range recs {
		data = appendRecordFrame(data, r.Offset, r.Key, r.Payload)
	}
	return data
}

// TruncateBefore raises the retention floor to offset: records below
// it become unreadable immediately, and whole segments below it are
// removed from the store. Returns the new floor (which may be lower
// than requested only if the log is empty).
func (l *Log) TruncateBefore(offset uint64) error {
	l.lock()
	defer l.unlock()
	if offset > l.next {
		offset = l.next
	}
	if offset <= l.oldest {
		return nil
	}
	l.oldest = offset
	for len(l.segments) > 1 {
		seg := l.segments[0]
		last, ok := seg.lastOffset()
		if ok && last >= offset {
			break
		}
		if err := l.store.Remove(seg.base); err != nil {
			l.dead = fmt.Errorf("%w: %v", ErrDead, err)
			return l.dead
		}
		l.records -= len(seg.recs)
		l.statDroppedSegments++
		l.segments = l.segments[1:]
	}
	// Trim the boundary segment's in-memory index; its store bytes are
	// reclaimed when the whole segment ages out (physical removal is
	// segment-granular, logical truncation is exact).
	seg := l.segments[0]
	cut := sort.Search(len(seg.recs), func(i int) bool { return seg.recs[i].Offset >= offset })
	if cut > 0 {
		l.records -= cut
		seg.recs = seg.recs[cut:]
	}
	return nil
}

// Compact key-compacts every sealed segment now (the per-seal pass
// runs automatically; this is for owners that want an explicit sweep).
func (l *Log) Compact() error {
	l.lock()
	defer l.unlock()
	if l.dead != nil {
		return l.dead
	}
	l.compactSegmentsLocked(0, len(l.segments))
	return l.dead
}

// Commit durably persists a consumer's cursor: next is the offset of
// the first record the consumer has not processed. The first Commit
// registers the consumer, which from then on pins compaction and
// retention at or past its cursor.
func (l *Log) Commit(consumer string, next uint64) error {
	l.lock()
	defer l.unlock()
	if l.dead != nil {
		return l.dead
	}
	l.consumers[consumer] = next
	return l.persistOffsetsLocked()
}

// Forget durably removes a consumer's cursor, releasing its pin.
func (l *Log) Forget(consumer string) error {
	l.lock()
	defer l.unlock()
	if _, ok := l.consumers[consumer]; !ok {
		return nil
	}
	if l.dead != nil {
		return l.dead
	}
	delete(l.consumers, consumer)
	return l.persistOffsetsLocked()
}

func (l *Log) persistOffsetsLocked() error {
	l.offGen++
	entries := make([]offsetEntry, 0, len(l.consumers))
	for name, next := range l.consumers {
		entries = append(entries, offsetEntry{name: name, next: next})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	frame := appendOffsetsFrame(nil, l.offGen, entries)
	if l.offFrames+1 >= l.opts.OffsetsRewriteEvery {
		if err := l.store.RewriteOffsets(frame); err != nil {
			l.dead = fmt.Errorf("%w: %v", ErrDead, err)
			return l.dead
		}
		l.offFrames = 0
		return nil
	}
	n, err := l.store.AppendOffsets(frame)
	if err != nil || n < len(frame) {
		if err == nil {
			err = fmt.Errorf("commitlog: short offsets append")
		}
		l.dead = fmt.Errorf("%w: %v", ErrDead, err)
		return l.dead
	}
	l.offFrames++
	return nil
}

// Committed returns a consumer's persisted cursor.
func (l *Log) Committed(consumer string) (uint64, bool) {
	l.lock()
	defer l.unlock()
	next, ok := l.consumers[consumer]
	return next, ok
}

// Consumers returns the registered consumer names (sorted).
func (l *Log) Consumers() []string {
	l.lock()
	defer l.unlock()
	out := make([]string, 0, len(l.consumers))
	for name := range l.consumers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// OldestOffset returns the retention floor: the smallest offset that
// can still be read (reading below it returns ErrTruncatedBefore).
func (l *Log) OldestOffset() uint64 {
	l.lock()
	defer l.unlock()
	return l.oldest
}

// NextOffset returns the offset the next Append will assign.
func (l *Log) NextOffset() uint64 {
	l.lock()
	defer l.unlock()
	return l.next
}

// Len returns the retained record count.
func (l *Log) Len() int {
	l.lock()
	defer l.unlock()
	return l.records
}

// SegmentCount returns the number of segments (including the active
// one).
func (l *Log) SegmentCount() int {
	l.lock()
	defer l.unlock()
	return len(l.segments)
}

// CompactedRecords returns how many records key-compaction dropped.
func (l *Log) CompactedRecords() uint64 {
	l.lock()
	defer l.unlock()
	return l.statCompactedRecords
}

// Get returns the record at exactly offset.
func (l *Log) Get(offset uint64) (Record, bool) {
	l.lock()
	defer l.unlock()
	rec, _, ok := l.atOrAfterLocked(offset)
	if !ok || rec.Offset != offset {
		return Record{}, false
	}
	return rec, true
}

// atOrAfterLocked returns the first record with Offset >= offset, its
// successor offset, and whether one exists.
func (l *Log) atOrAfterLocked(offset uint64) (Record, uint64, bool) {
	// Find the first segment whose last record reaches offset.
	i := sort.Search(len(l.segments), func(i int) bool {
		last, ok := l.segments[i].lastOffset()
		return ok && last >= offset
	})
	for ; i < len(l.segments); i++ {
		recs := l.segments[i].recs
		j := sort.Search(len(recs), func(j int) bool { return recs[j].Offset >= offset })
		if j < len(recs) {
			return recs[j], recs[j].Offset + 1, true
		}
	}
	return Record{}, 0, false
}

// Records returns a copy of every retained record with Offset >= from
// (compaction holes skipped) — the bulk-replay convenience readers
// wrap.
func (l *Log) Records(from uint64) []Record {
	l.lock()
	defer l.unlock()
	if from < l.oldest {
		from = l.oldest
	}
	var out []Record
	for _, seg := range l.segments {
		if last, ok := seg.lastOffset(); !ok || last < from {
			continue
		}
		for _, r := range seg.recs {
			if r.Offset >= from {
				out = append(out, r)
			}
		}
	}
	return out
}

// ReadFrom returns a reader positioned at offset. A reader is a
// cursor, not a snapshot: it observes appends made after it was
// created, skips compaction holes, and reports ErrTruncatedBefore if
// retention overtakes it (the consumer's cue to resync from current
// state rather than replay).
func (l *Log) ReadFrom(offset uint64) *Reader {
	return &Reader{l: l, next: offset}
}

// Reader iterates records in offset order.
type Reader struct {
	l    *Log
	next uint64
}

// Next returns the next retained record, ErrEnd at the log's end, or
// ErrTruncatedBefore when the reader's position has fallen below the
// retention floor.
func (r *Reader) Next() (Record, error) {
	r.l.lock()
	defer r.l.unlock()
	if r.next < r.l.oldest {
		return Record{}, ErrTruncatedBefore
	}
	rec, succ, ok := r.l.atOrAfterLocked(r.next)
	if !ok {
		return Record{}, ErrEnd
	}
	r.next = succ
	return rec, nil
}

// Offset returns the reader's position: the offset the next Next call
// reads from.
func (r *Reader) Offset() uint64 { return r.next }

// Seek repositions the reader.
func (r *Reader) Seek(offset uint64) { r.next = offset }
