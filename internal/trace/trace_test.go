package trace

import (
	"testing"
	"time"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Days: 7, Seed: 5})
	b := Generate(Config{Days: 7, Seed: 5})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if *a[i] != *b[i] {
			t.Fatalf("job %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateSortedAndInRange(t *testing.T) {
	cfg := Config{Days: 14, Seed: 9}
	jobs := Generate(cfg)
	if len(jobs) == 0 {
		t.Fatal("empty trace")
	}
	start := time.Date(2019, 1, 7, 0, 0, 0, 0, time.UTC)
	end := start.Add(14 * 24 * time.Hour)
	for i, j := range jobs {
		if i > 0 && j.Arrival.Before(jobs[i-1].Arrival) {
			t.Fatal("trace not sorted by arrival")
		}
		if j.Arrival.Before(start) || j.Arrival.After(end) {
			t.Fatalf("arrival %v outside trace window", j.Arrival)
		}
		if j.Learners < 1 || j.GPUsPerLearner < 1 {
			t.Fatalf("degenerate job %+v", j)
		}
		if j.GPUType != "K80" && j.GPUType != "V100" {
			t.Fatalf("unknown GPU type %q", j.GPUType)
		}
		if j.Duration <= 0 || j.Duration > 97*time.Hour {
			t.Fatalf("implausible duration %v", j.Duration)
		}
	}
}

func TestDailyVolumeBand(t *testing.T) {
	// Fig 3(a): daily arrivals roughly 200-1400 at default settings.
	jobs := Generate(Config{Days: 60, Seed: 60})
	counts := DailyCounts(jobs, time.Date(2019, 1, 7, 0, 0, 0, 0, time.UTC), 60)
	lo, hi := counts[0], counts[0]
	for _, c := range counts {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if lo < 80 || hi > 2200 {
		t.Fatalf("daily volume [%d, %d] far outside the paper's 200-1400 band", lo, hi)
	}
	if hi < 700 {
		t.Fatalf("peak volume %d too low", hi)
	}
	// Weekly pattern: weekend days (5,6 offsets) lighter than weekdays.
	var wk, wkend float64
	for d, c := range counts {
		if d%7 >= 5 {
			wkend += float64(c)
		} else {
			wk += float64(c)
		}
	}
	if wkend/(60.0*2/7) >= wk/(60.0*5/7) {
		t.Fatal("weekend volume not lighter than weekday")
	}
}

func TestSizeMixtureDominatedBySmallJobs(t *testing.T) {
	jobs := Generate(Config{Days: 30, Seed: 3})
	small, distributed := 0, 0
	for _, j := range jobs {
		if j.Learners == 1 && j.GPUsPerLearner == 1 {
			small++
		}
		if j.Learners > 1 {
			distributed++
		}
	}
	frac := float64(small) / float64(len(jobs))
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("1Lx1G fraction = %.2f, want ~0.48", frac)
	}
	if distributed == 0 {
		t.Fatal("no distributed jobs in trace")
	}
}

func TestDailyCountsIgnoresOutOfRange(t *testing.T) {
	start := time.Date(2019, 1, 7, 0, 0, 0, 0, time.UTC)
	jobs := []*Job{
		{Arrival: start.Add(time.Hour)},
		{Arrival: start.Add(-time.Hour)},
		{Arrival: start.Add(100 * 24 * time.Hour)},
	}
	counts := DailyCounts(jobs, start, 2)
	if counts[0] != 1 || counts[1] != 0 {
		t.Fatalf("counts = %v", counts)
	}
}
