package expt

import "testing"

// TestWatchChurnPersistedLogEliminatesResyncs is the acceptance pin for
// the durable watch layer at experiment scale: under chaos-injected
// snapshot restores and forced failovers, watchers resuming by revision
// never resync when the event log is persisted, and are forced to
// resync (>= 1 per restore) in the ablation.
func TestWatchChurnPersistedLogEliminatesResyncs(t *testing.T) {
	cfg := WatchChurnConfig{Jobs: 50, Cycles: 2, Seed: 7}
	with, without, err := WatchChurnCompare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []WatchChurnResult{with, without} {
		if r.SnapshotRestores == 0 {
			t.Fatalf("run (persisted=%v) induced no snapshot restore; chaos ineffective: %+v", r.PersistedHistory, r)
		}
		if r.Resumes == 0 || r.Delivered == 0 {
			t.Fatalf("run (persisted=%v) exercised no resumes/deliveries: %+v", r.PersistedHistory, r)
		}
	}
	if with.Resyncs != 0 {
		t.Fatalf("persisted log still forced %d resyncs (%.2f/restore)", with.Resyncs, with.ResyncsPerRestore)
	}
	if without.ResyncsPerRestore < 1 {
		t.Fatalf("ablation resyncs/restore = %.2f, want >= 1 (%d resyncs / %d restores)",
			without.ResyncsPerRestore, without.Resyncs, without.SnapshotRestores)
	}
}
