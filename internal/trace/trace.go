// Package trace synthesizes the production job-arrival traces used by
// the Spread-vs-Pack study (Fig. 3). The paper collected 60 days of
// arrivals on a 400-GPU production cluster (180 K80 + 220 V100); since
// those traces are not public, this generator produces a statistically
// similar workload: diurnal and weekly arrival modulation around
// 200-1400 jobs/day, a job-size mixture dominated by small single-GPU
// jobs with a tail of large distributed ones, and long-tailed job
// durations. The Spread/Pack comparison replays both policies on the
// *same* generated trace, so any trace with realistic size mixture
// exercises the fragmentation mechanism being measured.
package trace

import (
	"time"

	"github.com/ffdl/ffdl/internal/sim"
)

// Job is one trace record.
type Job struct {
	ID      string
	Arrival time.Time
	// Duration is the execution time once started.
	Duration time.Duration
	// Learners and GPUsPerLearner shape the gang.
	Learners       int
	GPUsPerLearner int
	// GPUType is "K80" or "V100" on the production cluster.
	GPUType string
}

// TotalGPUs is the job's aggregate demand.
func (j *Job) TotalGPUs() int { return j.Learners * j.GPUsPerLearner }

// Config shapes a synthetic trace.
type Config struct {
	// Days is the trace length (the paper's is 60).
	Days int
	// MeanJobsPerDay centers the arrival volume (paper: ~200-1400/day;
	// default 700).
	MeanJobsPerDay float64
	// Seed fixes the generated trace.
	Seed int64
	// Start is the trace origin.
	Start time.Time
}

func (c *Config) defaults() {
	if c.Days <= 0 {
		c.Days = 60
	}
	if c.MeanJobsPerDay <= 0 {
		c.MeanJobsPerDay = 700
	}
	if c.Seed == 0 {
		c.Seed = 60
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2019, 1, 7, 0, 0, 0, 0, time.UTC) // a Monday
	}
}

// jobShape is one entry in the size mixture.
type jobShape struct {
	learners, gpus int
	weight         float64
}

// sizeMixture reflects the paper's workload: mostly 1L×1G interactive
// jobs, with meaningful mass on 1L×2G and 1L×4G, and a distributed tail
// (2L and 4L) — the shapes used in §5.3's experiments.
var sizeMixture = []jobShape{
	{1, 1, 0.48},
	{1, 2, 0.22},
	{1, 4, 0.12},
	{2, 1, 0.08},
	{2, 2, 0.05},
	{4, 1, 0.03},
	{4, 2, 0.015},
	{2, 4, 0.005},
}

// Generate produces the trace, sorted by arrival time.
func Generate(cfg Config) []*Job {
	cfg.defaults()
	rng := sim.NewRNG(cfg.Seed)
	arrivalRNG := rng.Stream(1)
	shapeRNG := rng.Stream(2)
	durRNG := rng.Stream(3)
	typeRNG := rng.Stream(4)

	weights := make([]float64, len(sizeMixture))
	for i, s := range sizeMixture {
		weights[i] = s.weight
	}

	var jobs []*Job
	id := 0
	for day := 0; day < cfg.Days; day++ {
		dayStart := cfg.Start.Add(time.Duration(day) * 24 * time.Hour)
		volume := dailyVolume(cfg.MeanJobsPerDay, day, arrivalRNG)
		for hour := 0; hour < 24; hour++ {
			rate := volume * hourlyWeight(hour)
			n := arrivalRNG.Poisson(rate)
			for k := 0; k < n; k++ {
				shape := sizeMixture[shapeRNG.WeightedChoice(weights)]
				id++
				j := &Job{
					ID:       jobID(id),
					Arrival:  dayStart.Add(time.Duration(hour) * time.Hour).Add(time.Duration(arrivalRNG.Uniform(0, 3600)) * time.Second),
					Learners: shape.learners, GPUsPerLearner: shape.gpus,
					Duration: jobDuration(durRNG),
					GPUType:  gpuType(typeRNG),
				}
				jobs = append(jobs, j)
			}
		}
	}
	sortJobs(jobs)
	return jobs
}

// dailyVolume gives each day's job budget: a weekly cycle (weekends
// ~40% of weekdays) with multiplicative noise, spanning roughly
// 200-1400 as in Fig. 3(a).
func dailyVolume(mean float64, day int, rng *sim.RNG) float64 {
	weekday := day % 7
	weekFactor := 1.0
	if weekday >= 5 {
		weekFactor = 0.45
	}
	noise := rng.LogNormal(0, 0.25)
	v := mean * weekFactor * noise
	if v < 100 {
		v = 100
	}
	return v / 24 // hourly budget base; hourlyWeight reshapes it
}

// hourlyWeight is a diurnal profile peaking during working hours
// (normalized so the 24 weights sum to 24).
func hourlyWeight(hour int) float64 {
	// Plateau 9-18h, trough 0-6h.
	switch {
	case hour >= 9 && hour < 18:
		return 1.9
	case hour >= 6 && hour < 9, hour >= 18 && hour < 22:
		return 1.0
	default:
		return 0.31
	}
}

// jobDuration draws a long-tailed duration: median ~1.4h, mean ~3.3h,
// tail into days (the paper: jobs are long running, "often taking
// several days"). At the default arrival volume this loads the 400-GPU
// production cluster to ~45% mean utilization, so diurnal peaks queue —
// the regime Fig. 3 measures.
func jobDuration(rng *sim.RNG) time.Duration {
	hours := rng.LogNormal(0.35, 1.3) // median e^0.35 ≈ 1.4h
	if hours > 96 {
		hours = 96
	}
	if hours < 0.05 {
		hours = 0.05
	}
	return time.Duration(hours * float64(time.Hour))
}

// gpuType reflects the production cluster's 180 K80 / 220 V100 split.
func gpuType(rng *sim.RNG) string {
	if rng.Bernoulli(0.45) {
		return "K80"
	}
	return "V100"
}

func jobID(n int) string {
	const digits = "0123456789"
	buf := []byte("job-0000000")
	for i := len(buf) - 1; n > 0 && i >= 4; i-- {
		buf[i] = digits[n%10]
		n /= 10
	}
	return string(buf)
}

func sortJobs(jobs []*Job) {
	// Insertion-stable sort by arrival (traces are near-sorted already).
	for i := 1; i < len(jobs); i++ {
		j := jobs[i]
		k := i - 1
		for k >= 0 && jobs[k].Arrival.After(j.Arrival) {
			jobs[k+1] = jobs[k]
			k--
		}
		jobs[k+1] = j
	}
}

// DailyCounts aggregates arrivals per day (Fig. 3(a)).
func DailyCounts(jobs []*Job, start time.Time, days int) []int {
	counts := make([]int, days)
	for _, j := range jobs {
		if j.Arrival.Before(start) {
			continue // duration division truncates toward zero
		}
		d := int(j.Arrival.Sub(start) / (24 * time.Hour))
		if d < days {
			counts[d]++
		}
	}
	return counts
}
